// The numeric tolerances shared across the LP/MIP/KKT/check layers.
//
// Every solver and verifier in the tree used to carry its own literal
// (1e-9 here, 1e-6 there); this header is the single source of truth so
// that the solution certifier (src/check) can derive its acceptance
// thresholds from the *same* constants the solvers optimize against. A
// certifier stricter than the solver would reject legitimate optima; one
// unrelated to the solver would silently drift. Keep them coupled.
//
// Rationale for the magnitudes:
//  * the dense-tableau simplex does O(m*n) arithmetic per pivot on
//    problems whose data sits around 1e0..1e4 (capacities, demands), so
//    residuals of ~1e-10..1e-8 per binding row are routine;
//  * branch-and-bound composes simplex answers, so its integrality /
//    complementarity tolerances sit an order of magnitude looser;
//  * KKT points assembled from direct solves (kkt/parametric.h) push
//    simplex noise through stationarity sums, so feasibility screens for
//    *assembled* points are looser still (kAssembledPointTol).
#pragma once

namespace metaopt::tol {

// ---- simplex (lp/simplex.h defaults) ----

/// Minimum magnitude for a tableau pivot element; anything smaller is
/// treated as zero to avoid dividing by numerical dust.
inline constexpr double kPivotTol = 1e-9;

/// Phase-1 residual below which the program counts as feasible.
inline constexpr double kFeasTol = 1e-7;

/// Reduced-cost threshold for simplex optimality ("dual" tolerance).
inline constexpr double kCostTol = 1e-9;

// ---- standard form / bound handling ----

/// Bounds closer than this are treated as a fixed variable and the
/// column is substituted away (lp/standard_form.cpp); also the slack
/// used when branch-and-bound tests a node's box for emptiness.
inline constexpr double kFixTol = 1e-12;

// ---- branch-and-bound (mip/branch_and_bound.h defaults) ----

/// Integrality tolerance for binaries: a relaxation value within this
/// of an integer counts as integral.
inline constexpr double kIntTol = 1e-6;

/// Complementarity tolerance: a pair (a, b) counts as satisfied when
/// min(|a|, |b|) is below this.
inline constexpr double kComplTol = 1e-6;

/// Relative / absolute incumbent-vs-bound gaps at which the search stops
/// and declares optimality.
inline constexpr double kRelGap = 1e-6;
inline constexpr double kAbsGap = 1e-7;

// ---- anti-degeneracy bound perturbation (lp/revised_simplex.cpp) ----

/// Base magnitude of the EXPAND-style bound relaxation applied to
/// degenerate basic variables after a stall: each perturbed bound moves
/// outward by kPerturbBase * (1 + hash01(col)) * (1 + |bound|). One
/// order above kCostTol so the spread actually separates tied ratio
/// tests, two below kFeasTol so the post-restore dual cleanup moves by
/// steps the accuracy check considers noise.
inline constexpr double kPerturbBase = 1e-8;

/// A basic variable within this relative distance of a finite bound
/// counts as degenerate-active and gets that bound perturbed.
inline constexpr double kPerturbActiveTol = 1e-7;

// ---- presolve (lp/presolve.h default) ----

/// Activity-bound slack below which presolve rounds and comparisons are
/// considered exact.
inline constexpr double kPresolveTol = 1e-9;

// ---- assembled KKT points / heuristic incumbents ----

/// Feasibility screen for externally assembled points (primal-heuristic
/// incumbents, initial incumbents, certified MIP solutions). Sized for
/// KKT points assembled from direct solves, whose duals and slacks carry
/// simplex-tolerance noise through the stationarity sums.
inline constexpr double kAssembledPointTol = 1e-4;

// ---- model lint (check/lint.h default) ----

/// Coefficient / rhs magnitude above which the linter flags a suspicious
/// big-M. Beyond ~1e8 a big-M row spans more than ~16 orders of
/// magnitude against unit-scale data, which is where the KKT rewrite's
/// indicator constraints start losing their discrete meaning to
/// floating-point absorption.
inline constexpr double kBigMWarn = 1e8;

// ---- certifier (check/certify.h defaults) ----

/// Base tolerance for the LP certificate's scaled primal / dual /
/// complementary-slackness / objective checks: one order looser than
/// kFeasTol because the certifier re-accumulates row activities in plain
/// double sums without the tableau's cancellation structure.
inline constexpr double kCertifyTol = 1e-6;

}  // namespace metaopt::tol
