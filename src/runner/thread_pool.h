// Width-limited façade over the process-wide work-stealing Scheduler.
//
// ThreadPool used to own its workers; since the unified scheduler
// (scheduler.h) it owns none. A pool of width N is now an *admission
// limit*: at most N of its tasks are in flight on the shared scheduler
// at once, the rest wait in a backlog and are dispatched as completions
// free a slot. Construction grows the shared pool to at least N
// workers (it never shrinks), so total process threads are bounded by
// the largest width any component asked for — not by a product of
// nested pool widths.
//
// The public contract is unchanged: submit() is safe from any thread
// including from inside a running task, wait_idle() blocks until every
// task submitted so far has finished, and the destructor drains before
// returning. Determinism note: the pool makes no ordering promises —
// callers that need reproducible output must key results by task
// identity (see SweepRunner, which writes results into per-job slots
// and sorts by job id), never by completion order.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

namespace metaopt::runner {

class ThreadPool {
 public:
  /// Admission width `num_threads`; <= 0 means hardware_concurrency().
  /// Grows the shared scheduler to at least that many workers.
  explicit ThreadPool(int num_threads = 0);

  /// Drains every submitted task (wait_idle), then releases the pool.
  /// The shared scheduler's workers live on.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread, including from inside a
  /// running task (the scheduler lands nested submits at the front of
  /// the submitting worker's own deque; external submits are dealt
  /// round-robin).
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void wait_idle();

  /// The admission width (not the shared scheduler's worker count).
  [[nodiscard]] int num_threads() const { return width_; }

  /// hardware_concurrency() with a floor of 1.
  static int default_threads();

 private:
  /// A submitted-but-not-yet-dispatched task. The depth tag is captured
  /// at submit() time: a backlogged task dispatched later from some
  /// completion wrapper must keep its submitter's nesting depth, not
  /// the wrapper's.
  struct Pending {
    std::function<void()> fn;
    int depth = 0;
  };

  /// Hands one task to the shared scheduler, wrapped with the
  /// completion bookkeeping that refills the slot from the backlog.
  void dispatch(Pending task);

  int width_ = 1;

  // mutex_ guards everything below; unfinished_'s decrement-to-zero is
  // notified under the lock so wait_idle can never miss it.
  std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::deque<Pending> backlog_;
  long in_flight_ = 0;   ///< dispatched to the scheduler, not finished
  long unfinished_ = 0;  ///< submitted to this pool, not finished
};

}  // namespace metaopt::runner
