#include "explain/core_minimizer.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "util/rng.h"

namespace metaopt::explain {

namespace {

const obs::Gauge g_core_size = obs::gauge("explain.core_size");
const obs::Histogram h_minimize_ns = obs::histogram("explain.minimize_ns");

std::vector<int> without(const std::vector<int>& keep, int element) {
  std::vector<int> out;
  out.reserve(keep.size() - 1);
  for (const int e : keep) {
    if (e != element) out.push_back(e);
  }
  return out;
}

}  // namespace

CoreResult CoreMinimizer::minimize(ProbeContext& ctx,
                                   const MinimizeOptions& options) const {
  MO_SPAN_HIST("explain.minimize", h_minimize_ns);
  const long probes_before = ctx.probes();

  CoreResult result;
  std::vector<int> keep = ctx.support();
  const ProbeOutcome start = ctx.probe(keep);
  if (start.gap < options.min_gap) {
    // The witness itself misses the threshold: nothing to minimize.
    // Echo the support so callers can report what was asked of it.
    result.core = keep;
    result.gap = start.gap;
    result.certified = ctx.all_certified();
    result.probes = ctx.probes() - probes_before;
    return result;
  }

  keep = shrink(ctx, std::move(keep), options);

  // Shared 1-minimality fixpoint: keep deleting single elements while
  // any deletion retains the threshold; when a full scan removes
  // nothing, the core is 1-minimal by construction. A correct strategy
  // reaches here already minimal and pays only memo lookups.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int e : keep) {
      const std::vector<int> trial = without(keep, e);
      if (ctx.probe(trial).gap >= options.min_gap) {
        keep = trial;
        changed = true;
        break;  // rescan from the start of the shrunk core
      }
    }
  }

  result.core = keep;
  result.gap = ctx.probe(keep).gap;
  result.certified = ctx.all_certified();
  result.probes = ctx.probes() - probes_before;
  result.minimal = true;
  g_core_size.set(static_cast<double>(keep.size()));
  return result;
}

std::vector<int> GreedyDeletionMinimizer::shrink(
    ProbeContext& ctx, std::vector<int> keep,
    const MinimizeOptions& options) const {
  // Deletion passes in a per-pass shuffled order: the order decides
  // which of several equally valid minimal cores we land on, so it is
  // drawn from a derive_seed stream — same seed, same core, bytewise.
  std::uint64_t pass = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<int> order = keep;
    util::Rng rng(util::derive_seed(options.seed, pass++));
    rng.shuffle(order);
    for (const int e : order) {
      if (keep.size() <= 1) break;
      // `order` is a snapshot; skip elements a prior deletion removed.
      if (!std::binary_search(keep.begin(), keep.end(), e)) continue;
      const std::vector<int> trial = without(keep, e);
      if (ctx.probe(trial).gap >= options.min_gap) {
        keep = trial;
        changed = true;
      }
    }
  }
  return keep;
}

std::vector<int> DdminMinimizer::shrink(ProbeContext& ctx,
                                        std::vector<int> keep,
                                        const MinimizeOptions& options) const {
  std::size_t granularity = 2;
  while (keep.size() >= 2) {
    // Split keep into `granularity` contiguous chunks (sizes differ by
    // at most one). Contiguity over the sorted element ids keeps the
    // chunking deterministic with no tie-break randomness needed.
    std::vector<std::vector<int>> chunks(granularity);
    for (std::size_t i = 0; i < keep.size(); ++i) {
      chunks[i * granularity / keep.size()].push_back(keep[i]);
    }

    bool reduced = false;
    // Reduce to a single chunk.
    for (const std::vector<int>& chunk : chunks) {
      if (chunk.size() == keep.size()) continue;
      if (ctx.probe(chunk).gap >= options.min_gap) {
        keep = chunk;
        granularity = 2;
        reduced = true;
        break;
      }
    }
    if (reduced) continue;

    // Reduce to a complement of one chunk.
    if (granularity > 2) {
      for (const std::vector<int>& chunk : chunks) {
        std::vector<int> complement;
        complement.reserve(keep.size() - chunk.size());
        std::set_difference(keep.begin(), keep.end(), chunk.begin(),
                            chunk.end(), std::back_inserter(complement));
        if (complement.empty() || complement.size() == keep.size()) continue;
        if (ctx.probe(complement).gap >= options.min_gap) {
          keep = std::move(complement);
          granularity = std::max<std::size_t>(granularity - 1, 2);
          reduced = true;
          break;
        }
      }
      if (reduced) continue;
    }

    // Refine granularity or stop.
    if (granularity >= keep.size()) break;
    granularity = std::min(granularity * 2, keep.size());
  }
  return keep;
}

std::unique_ptr<CoreMinimizer> make_minimizer(const std::string& strategy) {
  if (strategy == "greedy") return std::make_unique<GreedyDeletionMinimizer>();
  if (strategy == "ddmin") return std::make_unique<DdminMinimizer>();
  std::string known;
  for (const std::string& name : minimizer_names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  throw std::invalid_argument("unknown core-minimizer strategy '" + strategy +
                              "' (known: " + known + ")");
}

std::vector<std::string> minimizer_names() { return {"ddmin", "greedy"}; }

}  // namespace metaopt::explain
