// Figure 4a: worst-case DP gap vs pinning threshold (as % of link
// capacity) on B4, SWAN, and Abilene.
//
// Paper shape: the gap grows monotonically with the threshold (more
// demands get forced onto shortest paths), with topology-dependent slope
// even though the three networks have similar node/edge counts.
//
// The whole figure is one SweepSpec (topology x threshold grid) executed
// by the parallel SweepRunner — campaign wall-clock is the longest
// single job, not the sum of all fifteen. Thread count comes from
// METAOPT_BENCH_THREADS (default: all hardware threads); per-point
// results are independent of it. Besides the usual CSV rows, the full
// per-job report lands in bench_results/fig4a.jsonl.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "domains/domains.h"
#include "runner/sweep_runner.h"
#include "util/stopwatch.h"

namespace {

using namespace metaopt;

constexpr double kBudgetPerPoint = 20.0;

void Fig4a_DpThresholdSweep(benchmark::State& state) {
  domains::register_builtin();
  runner::SweepSpec spec;
  spec.topologies = {"b4", "swan", "abilene"};
  spec.heuristics = {runner::Heuristic::Dp};
  // 2.5%..20% of the 1000-unit link capacity, as absolute thresholds.
  spec.thresholds = {25.0, 50.0, 100.0, 150.0, 200.0};
  spec.budget_seconds = bench::scaled(kBudgetPerPoint);
  // Match the single-shot CLI path: budget-bounded black-box seeding
  // before the B&B (figure shape beats byte-reproducibility here), at
  // this bench's historical half-budget fraction.
  spec.deterministic = false;
  spec.seed_search_fraction = 0.5;

  runner::SweepOptions options;
  options.threads = bench::bench_threads();

  const obs::MetricsSnapshot obs_baseline = bench::obs_begin();
  util::Stopwatch bench_watch;
  std::vector<double> job_walls, norm_gaps;
  double worst_gap = 0.0;
  for (auto _ : state) {
    const runner::SweepReport report = runner::SweepRunner(options).run(spec);
    auto out = bench::csv("fig4a");
    for (const runner::JobResult& job : report.jobs) {
      const double pct = job.spec.threshold / 10.0;  // back to % of capacity
      out.row("fig4a", job.spec.topology, pct, job.result.normalized_gap,
              job.result.gap);
      worst_gap = std::max(worst_gap, job.result.normalized_gap);
      job_walls.push_back(job.wall_seconds);
      norm_gaps.push_back(job.result.normalized_gap);
    }
    report.write_jsonl("bench_results/fig4a.jsonl");
    state.counters["ok"] = report.num_ok;
    state.counters["failed"] = report.num_failed + report.num_timeout;
    state.counters["threads"] = report.threads;
  }
  state.counters["worst_norm_gap"] = worst_gap;
  bench::write_bench_report(
      "fig4a", obs_baseline, bench_watch.seconds(),
      {{"scale", std::to_string(bench::budget_scale())},
       {"threads", std::to_string(bench::bench_threads())},
       {"budget_per_point", std::to_string(spec.budget_seconds)}},
      {{"job_wall_seconds", job_walls}, {"norm_gap", norm_gaps}});
}

BENCHMARK(Fig4a_DpThresholdSweep)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
