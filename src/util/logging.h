// Lightweight leveled logging for the metaopt library.
//
// Usage:
//   MO_LOG(Info) << "solved in " << iters << " iterations";
//
// The global level defaults to Warn so library code stays quiet inside
// tests and benchmarks; examples raise it to Info.
//
// Thread-safe: the level is atomic and each LogLine flushes its fully
// formatted line under a sink mutex, so concurrent sweep jobs never
// interleave characters within a line.
#pragma once

#include <sstream>
#include <string>

namespace metaopt::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Returns the current global log level.
LogLevel log_level();

/// Sets the global log level (atomic; safe from any thread).
void set_log_level(LogLevel level);

/// Parses "trace|debug|info|warn|error|off" (case-insensitive).
/// Unknown strings leave the level unchanged and return false.
bool set_log_level(const std::string& name);

namespace detail {

/// Accumulates one log line and flushes it (with level tag and elapsed
/// time since process start) to stderr on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace metaopt::util

#define MO_LOG(severity)                                                     \
  if (::metaopt::util::LogLevel::severity >= ::metaopt::util::log_level())   \
  ::metaopt::util::detail::LogLine(::metaopt::util::LogLevel::severity)
