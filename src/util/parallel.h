// Process-wide awareness of nested parallelism.
//
// Two thread-local markers cooperate here:
//
//   * parallel_region_width() — the width of the worker pool this thread
//     belongs to. Informational: components log it and tests assert on
//     it. (It used to drive a clamp that forced a nested B&B serial
//     inside a sweep; the shared work-stealing scheduler made the clamp
//     obsolete — total workers are bounded by the largest
//     ensure_threads() request, never by a product of nested widths.)
//
//   * task_depth() — the nesting depth of the scheduler task this thread
//     is currently executing (-1 when it is not running a scheduler task
//     at all). Submitters tag child tasks with task_depth() + 1, so an
//     outer sweep job runs at depth 0 and the B&B helpers it spawns run
//     at depth 1. The scheduler uses the tag for its per-depth execution
//     histogram, and — crucially — the tag travels with the *task*, not
//     the thread, so work handed to a helper thread keeps its place in
//     the nesting no matter which worker picks it up.
//
// Both markers are plain thread_locals — no atomics, no registry —
// because the question is always about *this* thread, never a
// cross-thread query.
#pragma once

namespace metaopt::util {

namespace detail {
inline thread_local int t_parallel_region_width = 0;
inline thread_local int t_task_depth = -1;
}  // namespace detail

/// Width of the innermost parallel region this thread is a worker of
/// (0 when the thread is not a marked worker at all).
inline int parallel_region_width() {
  return detail::t_parallel_region_width;
}

/// Nesting depth of the scheduler task this thread is executing, or -1
/// when the thread is not inside a scheduler task. Submit children at
/// `task_depth() + 1`: -1 + 1 == 0 makes external submissions depth 0
/// without a special case.
inline int task_depth() { return detail::t_task_depth; }

/// RAII marker: declares the current thread a worker of a parallel
/// region of `width` sibling threads for the scope's lifetime. Nests:
/// the previous width is restored on destruction.
class ScopedParallelWorker {
 public:
  explicit ScopedParallelWorker(int width)
      : prev_(detail::t_parallel_region_width) {
    detail::t_parallel_region_width = width;
  }
  ~ScopedParallelWorker() { detail::t_parallel_region_width = prev_; }

  ScopedParallelWorker(const ScopedParallelWorker&) = delete;
  ScopedParallelWorker& operator=(const ScopedParallelWorker&) = delete;

 private:
  int prev_;
};

/// RAII marker: the current thread is executing a scheduler task at
/// `depth` for the scope's lifetime. Nests (inline joins run a child
/// task on its parent's stack); the previous depth is restored on
/// destruction.
class ScopedTaskDepth {
 public:
  explicit ScopedTaskDepth(int depth) : prev_(detail::t_task_depth) {
    detail::t_task_depth = depth;
  }
  ~ScopedTaskDepth() { detail::t_task_depth = prev_; }

  ScopedTaskDepth(const ScopedTaskDepth&) = delete;
  ScopedTaskDepth& operator=(const ScopedTaskDepth&) = delete;

 private:
  int prev_;
};

}  // namespace metaopt::util
