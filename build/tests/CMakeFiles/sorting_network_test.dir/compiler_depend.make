# Empty compiler generated dependencies file for sorting_network_test.
# This may be replaced when dependencies are built.
