// Small string helpers (formatting and joining) used across modules.
#pragma once

#include <string>
#include <vector>

namespace metaopt::util {

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// printf-style double formatting with trailing-zero trimming
/// ("12.5", "3", "0.0001").
std::string format_double(double value, int max_decimals = 6);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Splits on a single character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

}  // namespace metaopt::util
