// util/jsonl + runner/jsonl_io: the read side of sweep campaigns.
//
// The parser only has to handle the JSON the repo emits, but the
// tolerance contract matters: unknown keys (the optional trailing
// "metrics" object, future schema additions) and missing keys (records
// from pre-witness campaign files) must read cleanly, not fail.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "runner/jsonl_io.h"
#include "util/jsonl.h"

namespace metaopt {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(util::parse_json("null").is_null());
  EXPECT_TRUE(util::parse_json("true").as_bool());
  EXPECT_FALSE(util::parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(util::parse_json("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(util::parse_json("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
}

TEST(JsonParse, UnicodeEscape) {
  // é is é (U+00E9) in two UTF-8 bytes.
  const util::JsonValue v = util::parse_json("\"caf\\u00e9\"");
  EXPECT_EQ(v.as_string(), "caf\xc3\xa9");
}

TEST(JsonParse, NestedStructure) {
  const util::JsonValue v = util::parse_json(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
  ASSERT_TRUE(v.is_object());
  const util::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_EQ(v.find("c")->string_or("d", ""), "x");
  EXPECT_TRUE(v.find("e")->is_null());
}

TEST(JsonParse, ToleranceContract) {
  const util::JsonValue v = util::parse_json(R"({"known": 1})");
  EXPECT_EQ(v.find("unknown"), nullptr);
  EXPECT_DOUBLE_EQ(v.number_or("unknown", 42.0), 42.0);
  EXPECT_EQ(v.string_or("unknown", "def"), "def");
  EXPECT_DOUBLE_EQ(v.number_or("known", 0.0), 1.0);
}

TEST(JsonParse, ErrorsCarryOffset) {
  EXPECT_THROW(util::parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(util::parse_json("tru"), std::runtime_error);
  EXPECT_THROW(util::parse_json("[1, 2,]"), std::runtime_error);
  // Trailing garbage after a complete value is an error, not ignored.
  EXPECT_THROW(util::parse_json("{} x"), std::runtime_error);
  try {
    util::parse_json("[1, oops]");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonlFile, SkipsEmptyLinesAndReportsLineNumbers) {
  const std::string path = temp_path("jsonl_basic.jsonl");
  write_file(path, "{\"a\": 1}\n\n{\"a\": 2}\n");
  const std::vector<util::JsonValue> values = util::read_jsonl(path);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[1].number_or("a", 0.0), 2.0);

  const std::string bad = temp_path("jsonl_bad.jsonl");
  write_file(bad, "{\"a\": 1}\nnot json\n");
  try {
    util::read_jsonl(bad);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // The error names the file and the 1-based line.
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
  EXPECT_THROW(util::read_jsonl(temp_path("does_not_exist.jsonl")),
               std::runtime_error);
}

// A sweep record as runner::to_json emits it, including the trailing
// "metrics" object readers must tolerate.
constexpr const char* kSweepRecord =
    R"({"job":3,"topology":"fig1","heuristic":"dp","threshold":50,)"
    R"("partitions":2,"paths":2,"seed":7,"stream_seed":99,"instances":3,)"
    R"("pairs":0,"items":6,"dims":1,"bins":0,"budget":5,"status":"ok",)"
    R"("solve_status":"optimal","error":"","gap":100,"norm_gap":0.3846,)"
    R"("opt":260,"heur":160,"bound":100,"certified":true,"nodes":12,)"
    R"("vars":50,"rows":80,"sos":6,"binaries":6,"nonzeros":200,)"
    R"("volumes":[100,50,0,110,0,0],"solve_seconds":0.5,)"
    R"("wall_seconds":0.6,"metrics":{"simplex.pivots":123}})";

TEST(SweepJsonl, ParsesRecords) {
  const std::string path = temp_path("sweep_records.jsonl");
  write_file(path, std::string(kSweepRecord) + "\n");
  const std::vector<runner::JobRecord> records =
      runner::read_sweep_jsonl(path);
  ASSERT_EQ(records.size(), 1u);
  const runner::JobRecord& r = records[0];
  EXPECT_EQ(r.job, 3);
  EXPECT_EQ(r.topology, "fig1");
  EXPECT_EQ(r.heuristic, "dp");
  EXPECT_DOUBLE_EQ(r.threshold, 50.0);
  EXPECT_EQ(r.seed, 7u);
  EXPECT_EQ(r.stream_seed, 99u);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.certified);
  EXPECT_DOUBLE_EQ(r.gap, 100.0);
  ASSERT_EQ(r.volumes.size(), 6u);
  EXPECT_DOUBLE_EQ(r.volumes[3], 110.0);
}

TEST(SweepJsonl, PreWitnessRecordsGetDefaults) {
  // A record written before "volumes" existed: everything else reads,
  // volumes comes back empty.
  const std::string path = temp_path("sweep_pre_witness.jsonl");
  write_file(path,
             R"({"job":0,"heuristic":"ffd","items":6,"dims":2,"bins":3,)"
             R"("status":"ok","gap":1})"
             "\n");
  const std::vector<runner::JobRecord> records =
      runner::read_sweep_jsonl(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].volumes.empty());
  EXPECT_EQ(records[0].items, 6);
  EXPECT_EQ(records[0].dims, 2);
  // Missing keys take struct defaults, they are not errors.
  EXPECT_EQ(records[0].topology, "");
  EXPECT_DOUBLE_EQ(records[0].norm_gap, 0.0);
}

TEST(SweepJsonl, RecordToInstanceConfig) {
  const std::string path = temp_path("sweep_config.jsonl");
  write_file(path, std::string(kSweepRecord) + "\n");
  const runner::JobRecord r = runner::read_sweep_jsonl(path)[0];
  const heur::InstanceConfig config = runner::record_to_instance_config(r);
  EXPECT_EQ(config.heuristic, "dp");
  EXPECT_EQ(config.topology, "fig1");
  EXPECT_DOUBLE_EQ(config.threshold, 50.0);
  EXPECT_EQ(config.paths_per_pair, 2);
  EXPECT_EQ(config.partitions, 2);
  EXPECT_EQ(config.pop_instances, 3);
  // POP instantiation seeds derive from the recorded stream seed — the
  // sweep-runner convention, so probes re-solve what the campaign saw.
  EXPECT_EQ(config.stream_seed, 99u);
  EXPECT_TRUE(config.pop_seeds.empty());
  EXPECT_EQ(config.items, 6);
  EXPECT_EQ(config.bins, 0);
}

}  // namespace
}  // namespace metaopt
