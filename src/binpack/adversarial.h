// White-box adversarial search for first-fit(-decreasing) bin packing.
//
// Same Eq. 1 pipeline as core/adversarial.h, instantiated for the
// bin-packing domain: the leader picks item sizes, the unrolled FF/FFD
// procedure (binpack/encoding.h) plays the heuristic, the volume LP
// plays the embedded OPT bound, and every incumbent is re-scored exactly
// against the simulated heuristic and the assignment MIP — so the
// reported gap is the *true* bins-wasted count even though the embedded
// objective only upper-bounds it.
#pragma once

#include <vector>

#include "binpack/binpack.h"
#include "heur/instance.h"

namespace metaopt::binpack {

/// Worst-case FF/FFD-vs-OPT gap (in bins) over the leader box. The
/// returned gap/opt_value/heur_value come from exact direct re-solves at
/// the incumbent; `bound` is the branch-and-bound bound on the embedded
/// surrogate (a valid upper bound on the true gap); `certified` means
/// the incumbent's OPT re-solve passed independent certification.
heur::GapFindResult find_ffd_gap(const BinPackConfig& config,
                                 const heur::FindOptions& options);

/// Size levels where adversarial instances concentrate: just above the
/// C/2, C/3, C/4 packing breakpoints, plus the classic worst-case-family
/// values (0.45C / 0.26C) and the box corners.
std::vector<double> quantize_levels(const BinPackConfig& config);

/// The deterministic seed instance: per 3 items, one 0.45C item and two
/// 0.26C items (item-major, sorted by decreasing key; zero-padded).
/// OPT packs each (a,b,b) triple in one bin at 0.97C; FFD pairs the a's
/// first and strands trailing b's, wasting a bin for every 6 items.
std::vector<double> worst_case_family(const BinPackConfig& config);

}  // namespace metaopt::binpack
