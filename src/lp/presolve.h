// LP presolve: bound propagation over the constraint activity ranges.
//
// Given a model (and optionally overridden variable bounds, e.g. at a
// branch-and-bound node), repeatedly:
//   * computes each row's minimum/maximum activity,
//   * flags rows that can never be satisfied (node is infeasible),
//   * flags rows that are always satisfied (redundant),
//   * tightens variable bounds implied by each row,
// until a fixpoint or the round cap. Big-M indicator rows — the bulk of
// the DP/POP encodings — respond particularly well: fixing one binary
// propagates into many flow-variable bounds, shrinking the node LPs.
#pragma once

#include <vector>

#include "lp/model.h"
#include "util/tolerances.h"

namespace metaopt::lp {

struct PresolveOptions {
  int max_rounds = 10;
  double tol = ::metaopt::tol::kPresolveTol;  // member name shadows the ns
  /// Round tightened binary bounds to exact integers.
  bool round_binaries = true;
};

struct PresolveResult {
  /// True when some row is provably unsatisfiable within the bounds.
  bool infeasible = false;
  std::vector<double> lb;
  std::vector<double> ub;
  /// Rows whose max activity already satisfies them (safe to drop).
  std::vector<bool> redundant_rows;
  int rounds = 0;
  int tightenings = 0;

  /// Per-row activity scratch, kept here so a caller that presolves in a
  /// loop (one branch-and-bound node after another) reuses the
  /// allocations instead of growing fresh vectors every node.
  std::vector<double> scratch_term_lo;
  std::vector<double> scratch_term_hi;
};

/// Runs presolve on `model` starting from its own bounds or the given
/// overrides (both must have model.num_vars() entries when non-null).
PresolveResult presolve(const Model& model, const PresolveOptions& options = {},
                        const std::vector<double>* lb0 = nullptr,
                        const std::vector<double>* ub0 = nullptr);

/// Same, writing into a caller-owned result whose buffers (bounds,
/// redundant-row flags, scratch) are reused across calls. All outputs
/// are reset first; only capacity survives.
void presolve_into(const Model& model, const PresolveOptions& options,
                   const std::vector<double>* lb0,
                   const std::vector<double>* ub0, PresolveResult& result);

}  // namespace metaopt::lp
