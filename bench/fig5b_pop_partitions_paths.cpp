// Figure 5b: POP's worst-case gap vs the number of partitions and the
// number of paths per pair, on B4.
//
// Paper shape: more partitions => larger gap (capacity is split more
// ways, so more of it can be stranded in the wrong partition); more
// paths per pair => somewhat smaller gap (extra paths let the heuristic
// reach fragmented capacity).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/adversarial.h"

namespace {

using namespace metaopt;

constexpr double kBudget = 30.0;
constexpr int kMaskPairs = 40;

void run_config(benchmark::State& state, int partitions, int paths_per_pair,
                const std::string& series) {
  const net::Topology topo = net::topologies::b4();
  const te::PathSet paths(topo, te::all_pairs(topo), paths_per_pair);
  core::AdversarialGapFinder finder(topo, paths);

  te::PopConfig pop;
  pop.num_partitions = partitions;
  const std::vector<std::uint64_t> seeds{1, 2, 3};

  core::AdversarialOptions options;
  options.mip.time_limit_seconds = bench::scaled(kBudget);
  options.seed_search_seconds = bench::scaled(kBudget) * 0.3;
  options.pair_mask = bench::spread_mask(paths.num_pairs(), kMaskPairs);

  double norm_gap = 0.0;
  for (auto _ : state) {
    const core::AdversarialResult r = finder.find_pop_gap(pop, seeds, options);
    norm_gap = r.normalized_gap;
    auto out = bench::csv("fig5b");
    const double x = series == "partitions" ? partitions : paths_per_pair;
    out.row("fig5b", series, x, norm_gap, "");
  }
  state.counters["norm_gap"] = norm_gap;
  state.SetLabel("partitions=" + std::to_string(partitions) +
                 " paths=" + std::to_string(paths_per_pair));
}

/// Partition sweep at 2 paths per pair.
void Fig5b_Partitions(benchmark::State& state) {
  run_config(state, static_cast<int>(state.range(0)), 2, "partitions");
}

/// Path sweep at 2 partitions.
void Fig5b_Paths(benchmark::State& state) {
  run_config(state, 2, static_cast<int>(state.range(0)), "paths");
}

BENCHMARK(Fig5b_Partitions)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(Fig5b_Paths)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

}  // namespace

BENCHMARK_MAIN();
