// The process-wide work-stealing scheduler: submit/join basics, the
// inline-join deadlock-freedom rule, depth tags traveling with tasks
// (not threads), monotone pool growth bounded by the max component
// request, and the end-to-end oversubscription contract — a nested
// multi-threaded B&B inside a sweep job, even one moved onto a raw
// helper thread, never multiplies worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mip/branch_and_bound.h"
#include "obs/metrics.h"
#include "runner/scheduler.h"
#include "runner/sweep_runner.h"
#include "runner/sweep_spec.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace metaopt::runner {
namespace {

TEST(SchedulerTest, SubmitAndJoinRunsEveryTask) {
  Scheduler& sched = Scheduler::global();
  sched.ensure_threads(2);
  std::atomic<int> count{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 500; ++i) {
    handles.push_back(sched.submit([&count] { count.fetch_add(1); }));
  }
  for (const TaskHandle& h : handles) sched.join(h);
  EXPECT_EQ(count.load(), 500);
}

TEST(SchedulerTest, JoinRunsUnclaimedTaskInline) {
  // The deadlock-freedom rule: joining a task no worker has claimed yet
  // runs it on the joining thread. Saturate the pool with slow tasks so
  // the joined task is still pending, then verify it ran on this thread.
  Scheduler& sched = Scheduler::global();
  sched.ensure_threads(2);
  std::atomic<bool> release{false};
  std::vector<TaskHandle> blockers;
  for (int i = 0; i < sched.num_threads(); ++i) {
    blockers.push_back(sched.submit([&release] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  std::thread::id ran_on;
  const TaskHandle task =
      sched.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  sched.join(task);  // must not block behind the saturated pool
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  release.store(true);
  for (const TaskHandle& h : blockers) sched.join(h);
}

TEST(SchedulerTest, DepthTagTravelsWithTheTask) {
  Scheduler& sched = Scheduler::global();
  sched.ensure_threads(2);
  // Outside any scheduler task the depth is the -1 sentinel, so the
  // task_depth() + 1 submission idiom makes external work depth 0.
  EXPECT_EQ(util::task_depth(), -1);
  int outer_depth = -2;
  int inner_depth = -2;
  const TaskHandle outer = sched.submit(
      [&sched, &outer_depth, &inner_depth] {
        outer_depth = util::task_depth();
        const TaskHandle inner = sched.submit(
            [&inner_depth] { inner_depth = util::task_depth(); },
            util::task_depth() + 1);
        sched.join(inner);
      },
      util::task_depth() + 1);
  sched.join(outer);
  EXPECT_EQ(outer_depth, 0);
  EXPECT_EQ(inner_depth, 1);
  EXPECT_EQ(util::task_depth(), -1);  // restored after inline joins
}

TEST(SchedulerTest, EnsureThreadsOnlyGrows) {
  Scheduler& sched = Scheduler::global();
  sched.ensure_threads(3);
  const int width = sched.num_threads();
  EXPECT_GE(width, 3);
  sched.ensure_threads(1);  // a smaller request never shrinks the pool
  EXPECT_EQ(sched.num_threads(), width);
  sched.ensure_threads(0);  // nonsense requests are clamped, not fatal
  EXPECT_EQ(sched.num_threads(), width);
}

TEST(SchedulerTest, TasksSeeThePoolAsTheirParallelRegion) {
  Scheduler& sched = Scheduler::global();
  sched.ensure_threads(2);
  int width = 0;
  sched.join(sched.submit([&width] { width = util::parallel_region_width(); }));
  EXPECT_EQ(width, sched.num_threads());
}

// The satellite regression this PR closes: parallel_region_width() was a
// thread-local, so a sweep job that moved its solver call onto a raw
// helper thread escaped the old oversubscription clamp entirely — the
// helper thread had no marker and the B&B would spawn its full private
// pool on top of the sweep's. With the shared scheduler the bound is
// structural: no matter which thread asks, workers come from one pool
// whose size is the max of all requests, never a product.
TEST(SchedulerTest, NestedBnbOnHelperThreadNeverOversubscribes) {
  using mip::BranchAndBound;
  using mip::MipOptions;

  // A small branching MIP (same family as bnb_parallel_test).
  util::Rng rng(util::derive_seed(20260809, 1));
  lp::Model m;
  std::vector<lp::Var> xs;
  for (int i = 0; i < 6; ++i) {
    xs.push_back(m.add_binary("b" + std::to_string(i)));
  }
  lp::LinExpr weight;
  lp::LinExpr profit;
  double total_weight = 0.0;
  for (const lp::Var& x : xs) {
    const double w = rng.uniform(1.0, 5.0);
    total_weight += w;
    weight += w * lp::LinExpr(x);
    profit += rng.uniform(1.0, 6.0) * lp::LinExpr(x);
  }
  m.add_constraint(weight <= lp::LinExpr(total_weight * 0.5));
  m.set_objective(lp::ObjSense::Maximize, profit);

  MipOptions serial;
  serial.threads = 1;
  const auto ref = BranchAndBound(serial).solve(m);
  ASSERT_EQ(ref.status, lp::SolveStatus::Optimal);

  // A "sweep" whose job body hands the multi-threaded solve to a raw
  // std::thread — the exact shape that used to lose the clamp.
  SweepSpec spec;
  spec.max_jobs = 2;
  spec.thresholds = {25.0, 50.0};
  SweepOptions options;
  options.threads = 2;
  options.log_progress = false;
  const int before = Scheduler::global().num_threads();
  const SweepReport report = SweepRunner(options).run_jobs(
      expand_spec(spec), [&m, &ref](const JobSpec&) {
        heur::GapFindResult r;
        std::thread helper([&m, &ref, &r] {
          MipOptions opt;
          opt.threads = 3;
          const auto sol = BranchAndBound(opt).solve(m);
          r.status = sol.status;
          r.gap = sol.objective;
          // Bit-identical to the serial answer even from a helper
          // thread inside a sweep worker.
          EXPECT_EQ(sol.objective, ref.objective);
        });
        helper.join();
        r.volumes = {1.0};
        return r;
      });
  EXPECT_EQ(report.num_ok, 2);
  // The pool grew to at most max(before, sweep width, mip threads) —
  // the nested request did not multiply (2 sweep workers x 3 mip
  // threads would be 6).
  const int after = Scheduler::global().num_threads();
  EXPECT_EQ(after, std::max({before, 2, 3}));
}

}  // namespace
}  // namespace metaopt::runner
