file(REMOVE_RECURSE
  "libmetaopt_util.a"
)
