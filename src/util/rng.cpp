#include "util/rng.h"

namespace metaopt::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Jump the stream index in, then mix twice so adjacent (base, stream)
  // pairs land far apart.
  std::uint64_t state = base + 0xbf58476d1ce4e5b9ULL * (stream + 1);
  (void)splitmix64(state);
  return splitmix64(state);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace metaopt::util
