#include "explain/explain.h"

#include <memory>
#include <utility>

#include "explain/core_minimizer.h"
#include "explain/probe.h"
#include "obs/obs.h"
#include "util/stopwatch.h"

namespace metaopt::explain {

namespace {

const obs::Histogram h_explain_ns = obs::histogram("explain.witness_ns");

}  // namespace

ExplainOutcome explain_witness(const heur::HeuristicInstance& instance,
                               const std::vector<double>& witness,
                               const ExplainOptions& options) {
  MO_SPAN_HIST("explain.witness", h_explain_ns);
  const util::Stopwatch watch;

  ExplainOutcome outcome;
  ExplainReport& report = outcome.report;
  report.heuristic = instance.name();
  report.source = options.source;
  report.strategy = options.strategy;
  report.num_elements = instance.num_core_elements();

  std::unique_ptr<CoreMinimizer> minimizer;
  try {
    minimizer = make_minimizer(options.strategy);
  } catch (const std::exception& e) {
    outcome.error = e.what();
    return outcome;
  }

  ProbeContext ctx(instance, witness, options.probe);
  report.support_size = static_cast<int>(ctx.support().size());

  const ProbeOutcome full = ctx.probe(ctx.support());
  report.witness_gap = full.gap;
  const double normalizer = instance.gap_normalizer();
  report.witness_norm_gap = normalizer > 0.0 ? full.gap / normalizer : 0.0;

  MinimizeOptions minimize;
  minimize.seed = options.seed;
  minimize.min_gap = options.min_gap_percent >= 0.0
                         ? options.min_gap_percent / 100.0 * normalizer
                         : 0.95 * full.gap;
  report.threshold = minimize.min_gap;

  if (full.gap <= 0.0 || full.gap < minimize.min_gap) {
    report.probes = ctx.probes();
    report.cache_hits = ctx.cache_hits();
    report.all_certified = ctx.all_certified();
    report.probe_gaps = ctx.probe_gaps();
    report.wall_seconds = watch.seconds();
    outcome.error = "witness gap " + std::to_string(full.gap) +
                    " is below the retention threshold " +
                    std::to_string(minimize.min_gap) +
                    " — nothing to explain";
    return outcome;
  }

  report.core = minimizer->minimize(ctx, minimize);
  for (const int e : report.core.core) {
    report.core_names.push_back(instance.core_element_name(e));
    std::vector<double> values;
    for (const int v : instance.core_element_vars(e)) {
      values.push_back(witness[v]);
    }
    report.core_values.push_back(std::move(values));
  }

  report.breakdown =
      instance.explain_solution(ctx.masked_vector(report.core.core),
                                options.probe);
  report.probes = ctx.probes();
  report.cache_hits = ctx.cache_hits();
  report.all_certified = ctx.all_certified();
  report.probe_gaps = ctx.probe_gaps();
  report.wall_seconds = watch.seconds();
  outcome.ok = true;
  return outcome;
}

}  // namespace metaopt::explain
