# Empty dependencies file for fig5a_pop_instances.
# This may be replaced when dependencies are built.
