#include "heur/gap.h"

namespace metaopt::heur {

MaskedGapOracle::MaskedGapOracle(const GapOracle& base,
                                 std::vector<bool> include)
    : base_(base) {
  for (std::size_t k = 0; k < include.size(); ++k) {
    if (include[k]) active_.push_back(static_cast<int>(k));
  }
}

std::vector<double> MaskedGapOracle::expand(
    const std::vector<double>& reduced) const {
  std::vector<double> full(base_.num_leader_vars(), 0.0);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    full[active_[i]] = reduced[i];
  }
  return full;
}

GapResult MaskedGapOracle::evaluate(const std::vector<double>& leader) const {
  count_evaluation();
  return base_.evaluate(expand(leader));
}

}  // namespace metaopt::heur
