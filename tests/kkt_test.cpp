// Tests for the KKT single-shot rewrite (§3.1, Fig. 2).
#include <gtest/gtest.h>

#include <cmath>

#include "check/lint.h"
#include "kkt/kkt_rewriter.h"
#include "lp/simplex.h"
#include "mip/branch_and_bound.h"
#include "util/rng.h"

namespace metaopt::kkt {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::ObjSense;
using lp::SolveStatus;
using lp::Var;

/// Solves the KKT feasibility system (with an optional outer objective)
/// via branch-and-bound.
lp::Solution solve_kkt(Model& outer) {
  mip::MipOptions opt;
  opt.time_limit_seconds = 30.0;
  return mip::BranchAndBound(opt).solve(outer);
}

TEST(Kkt, RectangleExampleFig2) {
  // Inner: min w^2 + l^2  s.t. 2(w + l) >= P, w,l >= 0; P fixed at 12.
  // KKT gives w = l = P/4 = 3 and lambda = P/4 = 3 (Fig. 2).
  Model outer;
  Var P = outer.add_var("P", 12.0, 12.0);
  Var w = outer.add_var("w");
  Var l = outer.add_var("l");

  InnerProblem inner(ObjSense::Minimize);
  inner.add_decision_var(w);
  inner.add_decision_var(l);
  inner.add_constraint(2.0 * w + 2.0 * l >= LinExpr(P), "perimeter");
  inner.set_objective(LinExpr(0.0));
  inner.add_quadratic_objective(w, 1.0);
  inner.add_quadratic_objective(l, 1.0);

  const KktArtifacts art = emit_kkt(outer, inner, "rect.");
  EXPECT_EQ(art.duals.size(), 3u);          // perimeter + two lb rows
  EXPECT_EQ(art.num_complementarities, 3);  // all inequalities
  outer.set_objective(ObjSense::Minimize, LinExpr(0.0));  // pure feasibility

  const auto sol = solve_kkt(outer);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.values[w.id], 3.0, 1e-5);
  EXPECT_NEAR(sol.values[l.id], 3.0, 1e-5);
  EXPECT_NEAR(sol.values[art.duals[0].id], 3.0, 1e-5);  // lambda = P/4
}

TEST(Kkt, RectangleWithOuterVariablePerimeter) {
  // Now the outer problem *chooses* P in [0, 40] to maximize w + l; the
  // KKT system forces w = l = P/4, so the optimum is P=40, w+l=20.
  Model outer;
  Var P = outer.add_var("P", 0.0, 40.0);
  Var w = outer.add_var("w");
  Var l = outer.add_var("l");

  InnerProblem inner(ObjSense::Minimize);
  inner.add_decision_var(w);
  inner.add_decision_var(l);
  inner.add_constraint(2.0 * w + 2.0 * l >= LinExpr(P), "perimeter");
  inner.add_quadratic_objective(w, 1.0);
  inner.add_quadratic_objective(l, 1.0);

  emit_kkt(outer, inner, "rect.");
  outer.set_objective(ObjSense::Maximize, w + l);
  const auto sol = solve_kkt(outer);
  ASSERT_TRUE(sol.has_solution());
  EXPECT_NEAR(sol.objective, 20.0, 1e-4);
  EXPECT_NEAR(sol.values[P.id], 40.0, 1e-4);
}

TEST(Kkt, FeasiblePointIsInnerOptimal) {
  // Inner LP: max x1 + x2 s.t. x1 + 2 x2 <= t, x1 <= 3 with outer t.
  // For fixed t the optimum is min(t, 3) + max(0, (t - 3) / 2)...
  // Cross-check against a direct simplex solve for several t.
  for (double t : {1.0, 3.0, 5.0, 9.0}) {
    Model outer;
    Var tv = outer.add_var("t", t, t);
    Var x1 = outer.add_var("x1");
    Var x2 = outer.add_var("x2");
    InnerProblem inner(ObjSense::Maximize);
    inner.add_decision_var(x1);
    inner.add_decision_var(x2);
    inner.add_constraint(x1 + 2.0 * x2 <= LinExpr(tv), "c1");
    inner.add_constraint(LinExpr(x1) <= LinExpr(3.0), "c2");
    inner.set_objective(x1 + x2);
    const KktArtifacts art = emit_kkt(outer, inner, "in.");
    outer.set_objective(ObjSense::Minimize, LinExpr(0.0));
    const auto sol = solve_kkt(outer);
    ASSERT_EQ(sol.status, SolveStatus::Optimal) << "t=" << t;

    // Direct reference solve.
    Model direct;
    Var y1 = direct.add_var("x1");
    Var y2 = direct.add_var("x2");
    direct.add_constraint(y1 + 2.0 * y2 <= LinExpr(t));
    direct.add_constraint(LinExpr(y1) <= LinExpr(3.0));
    direct.set_objective(ObjSense::Maximize, y1 + y2);
    const auto ref = lp::SimplexSolver().solve(direct);
    ASSERT_EQ(ref.status, SolveStatus::Optimal);

    const double kkt_obj =
        sol.values[x1.id] + sol.values[x2.id];
    EXPECT_NEAR(kkt_obj, ref.objective, 1e-6) << "t=" << t;
    (void)art;

    // The KKT-materialized system must be lint-clean: any NaN, inverted
    // bound, or degenerate pair here means the rewriter is emitting
    // malformed rows.
    const check::LintReport lint = check::lint_model(outer);
    EXPECT_FALSE(lint.has_errors()) << lint.to_string();
  }
}

TEST(Kkt, ObjectiveExprEvaluatesInnerOptimum) {
  Model outer;
  Var x = outer.add_var("x", 0.0, 7.0);
  InnerProblem inner(ObjSense::Maximize);
  inner.add_decision_var(x);
  inner.set_objective(2.0 * LinExpr(x) + 1.0);
  const KktArtifacts art = emit_kkt(outer, inner, "in.");
  outer.set_objective(ObjSense::Minimize, LinExpr(0.0));
  const auto sol = solve_kkt(outer);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(outer.eval(art.objective_expr, sol.values), 15.0, 1e-5);
}

TEST(Kkt, RejectsQuadraticOnParameter) {
  Model outer;
  Var theta = outer.add_var("theta", 0.0, 1.0);
  Var x = outer.add_var("x");
  InnerProblem inner(ObjSense::Minimize);
  inner.add_decision_var(x);
  inner.add_quadratic_objective(theta, 1.0);  // theta is not a decision var
  EXPECT_THROW(emit_kkt(outer, inner, "in."), std::invalid_argument);
}

TEST(Kkt, RejectsNonconvexQuadratic) {
  Model outer;
  Var x = outer.add_var("x");
  InnerProblem inner(ObjSense::Minimize);
  inner.add_decision_var(x);
  inner.add_quadratic_objective(x, -1.0);  // concave under minimize
  EXPECT_THROW(emit_kkt(outer, inner, "in."), std::invalid_argument);
}

TEST(Kkt, RejectsDuplicateDecisionVar) {
  Model outer;
  Var x = outer.add_var("x");
  InnerProblem inner(ObjSense::Minimize);
  inner.add_decision_var(x);
  inner.add_decision_var(x);
  EXPECT_THROW(emit_kkt(outer, inner, "in."), std::invalid_argument);
}

TEST(Kkt, DualBoundsTightenButPreserveOptimum) {
  // Max-flow-like LP duals admit an optimal point <= 1 when objective
  // coefficients are 1; verify the bounded rewrite still matches.
  Model outer;
  Var x1 = outer.add_var("x1");
  Var x2 = outer.add_var("x2");
  InnerProblem inner(ObjSense::Maximize);
  inner.add_decision_var(x1);
  inner.add_decision_var(x2);
  inner.add_constraint(x1 + x2 <= LinExpr(4.0), "cap", /*dual_bound=*/1.0);
  inner.add_constraint(LinExpr(x2) <= LinExpr(1.0), "d2", 1.0);
  inner.set_bound_dual_bound(1.0);
  inner.set_objective(x1 + x2);
  emit_kkt(outer, inner, "in.");
  outer.set_objective(ObjSense::Minimize, LinExpr(0.0));
  const auto sol = solve_kkt(outer);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.values[x1.id] + sol.values[x2.id], 4.0, 1e-6);
}

class KktRandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(KktRandomLpTest, KktSystemReproducesDirectOptimum) {
  // Random bounded max-LPs: solving the KKT feasibility system must land
  // exactly on the direct optimum (any feasible point is optimal, §3.1).
  util::Rng rng(900 + GetParam());
  const int n = rng.uniform_int(2, 4);
  const int rows = rng.uniform_int(1, 3);

  Model direct;
  Model outer;
  std::vector<Var> dx, ox;
  for (int j = 0; j < n; ++j) {
    const double ub = rng.uniform(1.0, 4.0);
    dx.push_back(direct.add_var("x" + std::to_string(j), 0.0, ub));
    ox.push_back(outer.add_var("x" + std::to_string(j), 0.0, ub));
  }
  InnerProblem inner(ObjSense::Maximize);
  for (const Var v : ox) inner.add_decision_var(v);
  for (int r = 0; r < rows; ++r) {
    LinExpr de, oe;
    for (int j = 0; j < n; ++j) {
      const double a = rng.uniform(0.0, 2.0);
      de.add_term(dx[j], a);
      oe.add_term(ox[j], a);
    }
    const double b = rng.uniform(1.0, 5.0);
    direct.add_constraint(de <= LinExpr(b));
    inner.add_constraint(oe <= LinExpr(b));
  }
  LinExpr dobj, oobj;
  for (int j = 0; j < n; ++j) {
    const double c = rng.uniform(0.1, 2.0);
    dobj.add_term(dx[j], c);
    oobj.add_term(ox[j], c);
  }
  direct.set_objective(ObjSense::Maximize, dobj);
  inner.set_objective(oobj);

  const auto ref = lp::SimplexSolver().solve(direct);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);

  const KktArtifacts art = emit_kkt(outer, inner, "in.");
  outer.set_objective(ObjSense::Minimize, LinExpr(0.0));
  const auto sol = solve_kkt(outer);
  ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed " << GetParam();
  EXPECT_NEAR(outer.eval(art.objective_expr, sol.values), ref.objective, 1e-5)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KktRandomLpTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace metaopt::kkt
