#include "util/string_util.h"

#include <cstdio>

namespace metaopt::util {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s.empty() || s == "-0") s = "0";
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace metaopt::util
