#include "check/lint.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <unordered_map>

namespace metaopt::check {

namespace {

using lp::ConInfo;
using lp::LinExpr;
using lp::Model;
using lp::ObjSense;
using lp::Sense;
using lp::VarId;
using lp::VarInfo;

const char* sense_name(Sense s) {
  switch (s) {
    case Sense::LessEqual: return "<=";
    case Sense::GreaterEqual: return ">=";
    case Sense::Equal: return "==";
  }
  return "?";
}

/// FNV-1a over the normalized row content, for duplicate-row buckets.
std::uint64_t hash_row(const LinExpr& lhs, Sense sense, double rhs) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mix_double = [&mix](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(sense));
  mix_double(rhs);
  for (const auto& [v, c] : lhs.terms()) {
    mix(static_cast<std::uint64_t>(v));
    mix_double(c);
  }
  return h;
}

bool same_row(const LinExpr& a, const LinExpr& b) {
  if (a.terms().size() != b.terms().size()) return false;
  for (std::size_t i = 0; i < a.terms().size(); ++i) {
    if (a.terms()[i] != b.terms()[i]) return false;
  }
  return true;
}

class Linter {
 public:
  Linter(const Model& model, const LintOptions& options)
      : model_(model), options_(options) {}

  LintReport run() {
    lint_vars();
    lint_objective();
    lint_rows();
    lint_columns();
    lint_complementarities();
    return std::move(report_);
  }

 private:
  void add(LintCode code, LintSeverity severity, std::string where, int index,
           std::string message) {
    report_.diagnostics.push_back(LintDiagnostic{
        code, severity, std::move(where), index, std::move(message)});
  }

  void lint_vars() {
    for (VarId v = 0; v < model_.num_vars(); ++v) {
      const VarInfo& info = model_.var(v);
      if (std::isnan(info.lb) || std::isnan(info.ub)) {
        add(LintCode::NonFiniteValue, LintSeverity::Error, info.name, v,
            "NaN variable bound");
        continue;
      }
      if (info.lb > info.ub) {
        add(LintCode::InvertedBounds, LintSeverity::Error, info.name, v,
            "lb " + std::to_string(info.lb) + " > ub " +
                std::to_string(info.ub));
      }
      if (info.kind == lp::VarKind::Binary &&
          (info.lb < 0.0 || info.ub > 1.0)) {
        add(LintCode::BinaryBounds, LintSeverity::Error, info.name, v,
            "binary bounds outside [0, 1]");
      }
    }
  }

  void lint_objective() {
    const LinExpr& obj = model_.objective();
    if (!std::isfinite(obj.constant())) {
      add(LintCode::NonFiniteValue, LintSeverity::Error, "objective", -1,
          "non-finite objective constant");
    }
    for (const auto& [v, coef] : obj.terms()) {
      if (!std::isfinite(coef)) {
        add(LintCode::NonFiniteValue, LintSeverity::Error, "objective", -1,
            "non-finite objective coefficient on " + var_name(v));
      } else if (std::abs(coef) >= options_.big_m_threshold) {
        add(LintCode::SuspiciousBigM, LintSeverity::Warning, "objective", -1,
            "objective coefficient " + std::to_string(coef) + " on " +
                var_name(v));
      }
    }
    for (const auto& [v, coef] : model_.quadratic_objective()) {
      if (!std::isfinite(coef)) {
        add(LintCode::NonFiniteValue, LintSeverity::Error, "objective", -1,
            "non-finite quadratic coefficient on " + var_name(v));
      }
    }
  }

  void lint_rows() {
    std::unordered_map<std::uint64_t, std::vector<int>> buckets;
    for (int ci = 0; ci < model_.num_constraints(); ++ci) {
      const ConInfo& con = model_.constraint(ci);
      const std::string where = con.name.empty()
                                    ? "row#" + std::to_string(ci)
                                    : con.name;

      if (std::isnan(con.rhs) ||
          (std::isinf(con.rhs) && con.sense == Sense::Equal)) {
        add(LintCode::NonFiniteValue, LintSeverity::Error, where, ci,
            "non-finite rhs");
      } else if (std::isinf(con.rhs)) {
        // +Inf on a LessEqual (or -Inf on a GreaterEqual) never binds;
        // the opposite infinity is unsatisfiable.
        const bool never_binds =
            (con.sense == Sense::LessEqual && con.rhs > 0.0) ||
            (con.sense == Sense::GreaterEqual && con.rhs < 0.0);
        if (never_binds) {
          add(LintCode::FreeRow, LintSeverity::Warning, where, ci,
              std::string("row can never bind (rhs ") +
                  (con.rhs > 0.0 ? "+Inf)" : "-Inf)"));
        } else {
          add(LintCode::NonFiniteValue, LintSeverity::Error, where, ci,
              "infinite rhs makes the row unsatisfiable");
        }
      } else if (std::abs(con.rhs) >= options_.big_m_threshold) {
        add(LintCode::SuspiciousBigM, LintSeverity::Warning, where, ci,
            "rhs magnitude " + std::to_string(con.rhs));
      }

      bool finite_terms = true;
      for (const auto& [v, coef] : con.lhs.terms()) {
        if (!std::isfinite(coef)) {
          add(LintCode::NonFiniteValue, LintSeverity::Error, where, ci,
              "non-finite coefficient on " + var_name(v));
          finite_terms = false;
        } else if (std::abs(coef) >= options_.big_m_threshold) {
          add(LintCode::SuspiciousBigM, LintSeverity::Warning, where, ci,
              "coefficient " + std::to_string(coef) + " on " + var_name(v));
        }
      }

      // Duplicate terms before normalization.
      {
        std::vector<VarId> ids;
        ids.reserve(con.lhs.terms().size());
        for (const auto& [v, coef] : con.lhs.terms()) {
          (void)coef;
          ids.push_back(v);
        }
        std::sort(ids.begin(), ids.end());
        const auto dup = std::adjacent_find(ids.begin(), ids.end());
        if (dup != ids.end()) {
          add(LintCode::DuplicateTerm, LintSeverity::Warning, where, ci,
              "variable " + var_name(*dup) + " appears twice");
        }
      }

      // Empty (constant) rows: trivially satisfied or violated.
      const LinExpr normalized = con.lhs.normalized();
      if (normalized.terms().empty()) {
        const double lhs = normalized.constant();  // 0 by construction
        bool violated = false;
        switch (con.sense) {
          case Sense::LessEqual: violated = lhs > con.rhs; break;
          case Sense::GreaterEqual: violated = lhs < con.rhs; break;
          case Sense::Equal: violated = lhs != con.rhs; break;
        }
        add(LintCode::EmptyRow,
            violated ? LintSeverity::Error : LintSeverity::Warning, where, ci,
            violated ? "constant row is trivially violated"
                     : "constant row is trivially satisfied");
      }

      if (options_.check_duplicate_rows && finite_terms &&
          !normalized.terms().empty()) {
        const std::uint64_t h = hash_row(normalized, con.sense, con.rhs);
        auto& bucket = buckets[h];
        for (const int other : bucket) {
          const ConInfo& prev = model_.constraint(other);
          if (prev.sense == con.sense && prev.rhs == con.rhs &&
              same_row(prev.lhs.normalized(), normalized)) {
            add(LintCode::DuplicateRow, LintSeverity::Warning, where, ci,
                std::string("identical to ") + sense_name(con.sense) + " row " +
                    (prev.name.empty() ? "#" + std::to_string(other)
                                       : prev.name));
            break;
          }
        }
        bucket.push_back(ci);
      }
    }
  }

  /// Column-level structure: variables in no row are either unused or,
  /// with an objective push toward an infinite bound, structurally
  /// unbounded.
  void lint_columns() {
    std::vector<bool> in_row(model_.num_vars(), false);
    for (const ConInfo& con : model_.constraints()) {
      for (const auto& [v, coef] : con.lhs.terms()) {
        if (coef != 0.0 && v >= 0 && v < model_.num_vars()) in_row[v] = true;
      }
    }
    std::vector<double> obj_coef(model_.num_vars(), 0.0);
    // normalized() returns by value; keep the temporary alive past terms().
    const LinExpr norm_obj = model_.objective().normalized();
    for (const auto& [v, coef] : norm_obj.terms()) {
      if (v >= 0 && v < model_.num_vars()) obj_coef[v] = coef;
    }
    const double improve =
        model_.objective_sense() == ObjSense::Minimize ? -1.0 : 1.0;
    for (VarId v = 0; v < model_.num_vars(); ++v) {
      if (in_row[v]) continue;
      const VarInfo& info = model_.var(v);
      const double push = improve * obj_coef[v];
      if (push > 0.0 && std::isinf(info.ub)) {
        add(LintCode::StructurallyUnboundedColumn, LintSeverity::Error,
            info.name, v,
            "appears in no row; objective pushes it to ub = +Inf");
      } else if (push < 0.0 && std::isinf(info.lb)) {
        add(LintCode::StructurallyUnboundedColumn, LintSeverity::Error,
            info.name, v,
            "appears in no row; objective pushes it to lb = -Inf");
      } else if (obj_coef[v] == 0.0 &&
                 model_.quadratic_objective().count(v) == 0) {
        add(LintCode::UnusedVariable, LintSeverity::Warning, info.name, v,
            "appears in no row and no objective");
      }
    }
  }

  void lint_complementarities() {
    const auto& pairs = model_.complementarities();
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto& pair = pairs[p];
      const std::string where =
          pair.name.empty() ? "pair#" + std::to_string(p) : pair.name;
      if (pair.a == pair.b) {
        add(LintCode::ComplementaritySelfPair, LintSeverity::Error, where,
            static_cast<int>(p),
            "both sides are " + var_name(pair.a) +
                " (forces the variable to zero)");
        continue;
      }
      for (const VarId side : {pair.a, pair.b}) {
        if (side >= 0 && side < model_.num_vars() &&
            model_.var(side).lb < 0.0) {
          add(LintCode::ComplementarityNegative, LintSeverity::Error, where,
              static_cast<int>(p),
              var_name(side) + " has a negative lower bound");
        }
      }
    }
  }

  [[nodiscard]] std::string var_name(VarId v) const {
    if (v < 0 || v >= model_.num_vars()) {
      return "var#" + std::to_string(v);
    }
    const std::string& name = model_.var(v).name;
    return name.empty() ? "var#" + std::to_string(v) : name;
  }

  const Model& model_;
  const LintOptions& options_;
  LintReport report_;
};

}  // namespace

const char* to_string(LintCode code) {
  switch (code) {
    case LintCode::NonFiniteValue: return "NonFiniteValue";
    case LintCode::InvertedBounds: return "InvertedBounds";
    case LintCode::BinaryBounds: return "BinaryBounds";
    case LintCode::EmptyRow: return "EmptyRow";
    case LintCode::DuplicateTerm: return "DuplicateTerm";
    case LintCode::DuplicateRow: return "DuplicateRow";
    case LintCode::FreeRow: return "FreeRow";
    case LintCode::StructurallyUnboundedColumn:
      return "StructurallyUnboundedColumn";
    case LintCode::UnusedVariable: return "UnusedVariable";
    case LintCode::SuspiciousBigM: return "SuspiciousBigM";
    case LintCode::ComplementaritySelfPair: return "ComplementaritySelfPair";
    case LintCode::ComplementarityNegative: return "ComplementarityNegative";
  }
  return "Unknown";
}

bool LintReport::has_errors() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const LintDiagnostic& d) {
                       return d.severity == LintSeverity::Error;
                     });
}

bool LintReport::has(LintCode code) const { return count(code) > 0; }

int LintReport::count(LintCode code) const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [code](const LintDiagnostic& d) { return d.code == code; }));
}

std::string LintReport::to_string() const {
  std::ostringstream out;
  for (const LintDiagnostic& d : diagnostics) {
    out << (d.severity == LintSeverity::Error ? "error" : "warning") << ": "
        << check::to_string(d.code) << " at " << d.where << ": " << d.message
        << "\n";
  }
  return out.str();
}

LintReport lint_model(const lp::Model& model, const LintOptions& options) {
  return Linter(model, options).run();
}

}  // namespace metaopt::check
