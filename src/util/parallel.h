// Process-wide awareness of nested parallelism.
//
// Components that can fan out onto their own worker threads (the sweep
// runner's ThreadPool, the parallel branch-and-bound) mark each worker
// thread with the width of the region it belongs to. A nested component
// checks `parallel_region_width()` before spawning its own workers: when
// it is already running inside a region wider than one thread, spawning
// more would oversubscribe the machine (N sweep jobs x M B&B workers),
// so it clamps itself to a single thread instead.
//
// The marker is a plain thread_local — no atomics, no registry — because
// the question is always "is *this* thread already a parallel worker?",
// never a cross-thread query. Width 1 (a single-threaded pool) does not
// inhibit nested parallelism; only width > 1 does.
#pragma once

namespace metaopt::util {

namespace detail {
inline thread_local int t_parallel_region_width = 0;
}  // namespace detail

/// Width of the innermost parallel region this thread is a worker of
/// (0 when the thread is not a marked worker at all).
inline int parallel_region_width() {
  return detail::t_parallel_region_width;
}

/// RAII marker: declares the current thread a worker of a parallel
/// region of `width` sibling threads for the scope's lifetime. Nests:
/// the previous width is restored on destruction.
class ScopedParallelWorker {
 public:
  explicit ScopedParallelWorker(int width)
      : prev_(detail::t_parallel_region_width) {
    detail::t_parallel_region_width = width;
  }
  ~ScopedParallelWorker() { detail::t_parallel_region_width = prev_; }

  ScopedParallelWorker(const ScopedParallelWorker&) = delete;
  ScopedParallelWorker& operator=(const ScopedParallelWorker&) = delete;

 private:
  int prev_;
};

}  // namespace metaopt::util
