file(REMOVE_RECURSE
  "CMakeFiles/metaopt_util.dir/csv.cpp.o"
  "CMakeFiles/metaopt_util.dir/csv.cpp.o.d"
  "CMakeFiles/metaopt_util.dir/logging.cpp.o"
  "CMakeFiles/metaopt_util.dir/logging.cpp.o.d"
  "CMakeFiles/metaopt_util.dir/rng.cpp.o"
  "CMakeFiles/metaopt_util.dir/rng.cpp.o.d"
  "CMakeFiles/metaopt_util.dir/stats.cpp.o"
  "CMakeFiles/metaopt_util.dir/stats.cpp.o.d"
  "CMakeFiles/metaopt_util.dir/string_util.cpp.o"
  "CMakeFiles/metaopt_util.dir/string_util.cpp.o.d"
  "libmetaopt_util.a"
  "libmetaopt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
