#include "runner/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/parallel.h"

namespace metaopt::runner {

namespace {

// Identity of the current thread as a scheduler worker (-1 / nullptr
// when it is an external thread). Keyed by scheduler instance out of
// caution, though only the global() instance exists today.
thread_local Scheduler* t_sched = nullptr;
thread_local int t_sched_index = -1;

const obs::Counter c_tasks = obs::counter("sched.tasks");
const obs::Counter c_steals = obs::counter("sched.steals");
const obs::Counter c_inline_joins = obs::counter("sched.inline_joins");
const obs::Gauge g_threads = obs::gauge("sched.threads");
const obs::Histogram h_task_depth = obs::histogram("sched.task_depth");

}  // namespace

Scheduler& Scheduler::global() {
  // Function-local static: constructed on first use, destroyed (workers
  // joined) after main() returns. Every user drains its own work before
  // then — ThreadPool in its destructor, the B&B before run() returns —
  // so the queues are empty at teardown.
  static Scheduler sched;
  return sched;
}

int Scheduler::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  const int n = num_workers_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) workers_[i]->thread.join();
}

void Scheduler::ensure_threads(int n) {
  n = std::clamp(n, 1, kMaxWorkers);
  if (num_workers_.load(std::memory_order_acquire) >= n) return;
  std::lock_guard<std::mutex> grow(grow_mutex_);
  const int cur = num_workers_.load(std::memory_order_relaxed);
  if (cur >= n) return;
  for (int i = cur; i < n; ++i) workers_[i] = std::make_unique<Worker>();
  // Publish the constructed slots before starting their threads: a
  // thief that observes the new count must find fully-built deques.
  num_workers_.store(n, std::memory_order_release);
  for (int i = cur; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
  g_threads.set(static_cast<double>(n));
}

TaskHandle Scheduler::submit(std::function<void()> fn, int depth) {
  if (num_workers_.load(std::memory_order_acquire) == 0) ensure_threads(1);
  auto task = std::make_shared<detail::SchedTask>();
  task->fn = std::move(fn);
  task->depth = depth;

  const int self = t_sched == this ? t_sched_index : -1;
  const auto n =
      static_cast<std::size_t>(num_workers_.load(std::memory_order_acquire));
  const std::size_t target = self >= 0 ? static_cast<std::size_t>(self)
                                       : next_worker_.fetch_add(1) % n;
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    if (self >= 0) {
      workers_[target]->tasks.push_front(task);  // LIFO for the owner
    } else {
      workers_[target]->tasks.push_back(task);
    }
  }
  {
    // Increment under wake_mutex_ so the change is ordered against a
    // worker's predicate check: without the lock, a worker could see
    // queued_ == 0, then miss this notify_one before blocking — a lost
    // wakeup that strands the task until the next submission.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    queued_.fetch_add(1);
  }
  wake_cv_.notify_one();
  return task;
}

void Scheduler::join(const TaskHandle& task) {
  if (task == nullptr) return;
  int expected = 0;
  if (task->state.compare_exchange_strong(expected, 1,
                                          std::memory_order_acq_rel)) {
    // Still pending: run it here, on the joining thread's stack. The
    // husk left in some deque is popped and skipped by whoever finds it.
    c_inline_joins.inc();
    execute(*task);
    return;
  }
  if (task->state.load(std::memory_order_acquire) == 2) return;
  std::unique_lock<std::mutex> lock(task->mutex);
  task->done_cv.wait(lock, [&task] {
    return task->state.load(std::memory_order_acquire) == 2;
  });
}

TaskHandle Scheduler::try_pop(int self) {
  if (queued_.load() == 0) return nullptr;
  const auto n =
      static_cast<std::size_t>(num_workers_.load(std::memory_order_acquire));
  // Own deque first (front = most recently pushed by us), then sweep
  // the siblings and steal from the back (their oldest, outermost work)
  // to keep each owner's hot end undisturbed.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (static_cast<std::size_t>(self) + k) % n;
    Worker& w = *workers_[i];
    TaskHandle task;
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      if (w.tasks.empty()) continue;
      if (k == 0) {
        task = std::move(w.tasks.front());
        w.tasks.pop_front();
      } else {
        task = std::move(w.tasks.back());
        w.tasks.pop_back();
      }
    }
    queued_.fetch_sub(1);
    if (k != 0 && task->state.load(std::memory_order_relaxed) == 0) {
      c_steals.inc();
    }
    return task;
  }
  return nullptr;
}

void Scheduler::execute(detail::SchedTask& task) {
  c_tasks.inc();
  h_task_depth.observe(static_cast<std::uint64_t>(std::max(0, task.depth)));
  {
    const util::ScopedTaskDepth depth(task.depth);
    const util::ScopedParallelWorker region(num_threads());
    task.fn();
  }
  task.fn = nullptr;  // release captured state before signalling done
  {
    std::lock_guard<std::mutex> lock(task.mutex);
    task.state.store(2, std::memory_order_release);
  }
  task.done_cv.notify_all();
}

void Scheduler::worker_loop(int self) {
  t_sched = this;
  t_sched_index = self;
  for (;;) {
    if (TaskHandle task = try_pop(self); task != nullptr) {
      int expected = 0;
      if (task->state.compare_exchange_strong(expected, 1,
                                              std::memory_order_acq_rel)) {
        execute(*task);
      }
      // else: an inline join claimed it first — skip the husk.
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_.load() > 0; });
    if (stop_ && queued_.load() == 0) return;
  }
}

}  // namespace metaopt::runner
