
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kkt/canon.cpp" "src/kkt/CMakeFiles/metaopt_kkt.dir/canon.cpp.o" "gcc" "src/kkt/CMakeFiles/metaopt_kkt.dir/canon.cpp.o.d"
  "/root/repo/src/kkt/kkt_rewriter.cpp" "src/kkt/CMakeFiles/metaopt_kkt.dir/kkt_rewriter.cpp.o" "gcc" "src/kkt/CMakeFiles/metaopt_kkt.dir/kkt_rewriter.cpp.o.d"
  "/root/repo/src/kkt/materialize.cpp" "src/kkt/CMakeFiles/metaopt_kkt.dir/materialize.cpp.o" "gcc" "src/kkt/CMakeFiles/metaopt_kkt.dir/materialize.cpp.o.d"
  "/root/repo/src/kkt/parametric.cpp" "src/kkt/CMakeFiles/metaopt_kkt.dir/parametric.cpp.o" "gcc" "src/kkt/CMakeFiles/metaopt_kkt.dir/parametric.cpp.o.d"
  "/root/repo/src/kkt/primal_dual.cpp" "src/kkt/CMakeFiles/metaopt_kkt.dir/primal_dual.cpp.o" "gcc" "src/kkt/CMakeFiles/metaopt_kkt.dir/primal_dual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/metaopt_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metaopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
