#include "search/search.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace metaopt::search {

namespace {

const obs::Counter c_evaluations = obs::counter("search.evaluations");
const obs::Counter c_improvements = obs::counter("search.improvements");
const obs::Counter c_restarts = obs::counter("search.restarts");
const obs::Histogram h_run_ns = obs::histogram("search.run_ns");

/// Shared bookkeeping: budget checks and best-so-far tracking.
class Tracker {
 public:
  Tracker(const heur::GapOracle& oracle, const SearchOptions& options)
      : oracle_(oracle), options_(options) {
    result_.best_volumes.assign(oracle.num_leader_vars(), 0.0);
    result_.best = oracle.evaluate(result_.best_volumes);  // gap(0) = 0
    ++result_.evaluations;
    c_evaluations.inc();
  }

  [[nodiscard]] bool budget_left() const {
    return watch_.seconds() < options_.time_limit_seconds &&
           result_.evaluations < options_.max_evaluations;
  }

  /// Evaluates `volumes`, updates the incumbent, returns the gap.
  double evaluate(const std::vector<double>& volumes) {
    const heur::GapResult r = oracle_.evaluate(volumes);
    ++result_.evaluations;
    c_evaluations.inc();
    if (r.gap() > result_.best.gap()) {
      result_.best = r;
      result_.best_volumes = volumes;
      result_.trace.emplace_back(watch_.seconds(), r.gap());
      c_improvements.inc();
      obs::record_counter("search.best_gap", r.gap());
    }
    return r.gap();
  }

  SearchResult finish() {
    result_.seconds = watch_.seconds();
    return std::move(result_);
  }

  void count_restart() {
    ++result_.restarts;
    c_restarts.inc();
  }

 private:
  const heur::GapOracle& oracle_;
  const SearchOptions& options_;
  util::Stopwatch watch_;
  SearchResult result_;
};

std::vector<double> random_point(int n, double ub, util::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(0.0, ub);
  return v;
}

/// d_aux = clamp(d + z, 0, ub), z ~ N(0, sigma^2 I)  (Algorithm 1 step).
std::vector<double> gaussian_neighbor(const std::vector<double>& d,
                                      double sigma, double ub,
                                      util::Rng& rng) {
  std::vector<double> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    out[i] = std::clamp(d[i] + rng.normal(0.0, sigma), 0.0, ub);
  }
  return out;
}

}  // namespace

SearchResult hill_climb(const heur::GapOracle& oracle,
                        const SearchOptions& options) {
  MO_SPAN_HIST("search.hill_climb", h_run_ns);
  util::Rng rng(options.seed);
  Tracker tracker(oracle, options);
  const double sigma = options.sigma_fraction * options.demand_ub;

  // A wrong-sized initial point is a caller bug (typically a mask/oracle
  // dimension mismatch); falling back to a random start silently would
  // hide it, so say so once up front.
  const bool use_initial =
      options.initial_point.size() ==
      static_cast<std::size_t>(oracle.num_leader_vars());
  if (!options.initial_point.empty() && !use_initial) {
    MO_LOG(Warn) << "hill_climb: ignoring initial_point of size "
                 << options.initial_point.size() << " (oracle expects "
                 << oracle.num_leader_vars() << " demands); starting random";
  }

  bool first_restart = true;
  while (tracker.budget_left()) {
    tracker.count_restart();
    std::vector<double> d =
        first_restart && use_initial
            ? options.initial_point
            : random_point(oracle.num_leader_vars(), options.demand_ub, rng);
    first_restart = false;
    double gap_d = tracker.evaluate(d);
    int failures = 0;
    while (failures < options.patience && tracker.budget_left()) {
      std::vector<double> aux =
          gaussian_neighbor(d, sigma, options.demand_ub, rng);
      const double gap_aux = tracker.evaluate(aux);
      if (gap_aux > gap_d) {
        d = std::move(aux);
        gap_d = gap_aux;
        failures = 0;  // Algorithm 1 resets k on improvement
      } else {
        ++failures;
      }
    }
  }
  return tracker.finish();
}

SearchResult simulated_annealing(const heur::GapOracle& oracle,
                                 const SearchOptions& options) {
  MO_SPAN_HIST("search.simulated_annealing", h_run_ns);
  util::Rng rng(options.seed);
  Tracker tracker(oracle, options);
  const double sigma = options.sigma_fraction * options.demand_ub;

  while (tracker.budget_left()) {
    tracker.count_restart();
    std::vector<double> d =
        random_point(oracle.num_leader_vars(), options.demand_ub, rng);
    double gap_d = tracker.evaluate(d);
    double temperature = options.t0;
    long iter = 0;
    // One annealing run: cool until the move probability is negligible.
    while (temperature > 1e-6 * options.t0 && tracker.budget_left()) {
      std::vector<double> aux =
          gaussian_neighbor(d, sigma, options.demand_ub, rng);
      const double gap_aux = tracker.evaluate(aux);
      const bool accept =
          gap_aux > gap_d ||
          rng.uniform(0.0, 1.0) < std::exp((gap_aux - gap_d) / temperature);
      if (accept) {
        d = std::move(aux);
        gap_d = gap_aux;
      }
      if (++iter % options.cooling_period == 0) temperature *= options.gamma;
    }
  }
  return tracker.finish();
}

SearchResult random_search(const heur::GapOracle& oracle,
                           const SearchOptions& options) {
  MO_SPAN_HIST("search.random_search", h_run_ns);
  util::Rng rng(options.seed);
  Tracker tracker(oracle, options);
  while (tracker.budget_left()) {
    tracker.evaluate(random_point(oracle.num_leader_vars(), options.demand_ub, rng));
  }
  return tracker.finish();
}

SearchResult quantized_climb(const heur::GapOracle& oracle,
                             const SearchOptions& options) {
  MO_SPAN_HIST("search.quantized_climb", h_run_ns);
  util::Rng rng(options.seed);
  Tracker tracker(oracle, options);
  std::vector<double> levels = options.levels;
  if (levels.empty()) levels = {0.0, options.demand_ub};
  const int n = oracle.num_leader_vars();

  while (tracker.budget_left()) {
    tracker.count_restart();
    // Random level assignment.
    std::vector<double> d(n);
    for (double& x : d) {
      x = levels[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(levels.size()) - 1))];
    }
    double gap_d = tracker.evaluate(d);
    // Coordinate passes: try every (coordinate, level) move; stop when a
    // full pass yields no improvement.
    bool improved = true;
    while (improved && tracker.budget_left()) {
      improved = false;
      for (int k = 0; k < n && tracker.budget_left(); ++k) {
        const double original = d[k];
        for (double level : levels) {
          if (level == original) continue;
          d[k] = level;
          const double gap_aux = tracker.evaluate(d);
          if (gap_aux > gap_d) {
            gap_d = gap_aux;
            improved = true;
            break;  // keep the move
          }
          d[k] = original;
        }
      }
    }
  }
  return tracker.finish();
}

}  // namespace metaopt::search
