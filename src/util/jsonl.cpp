#include "util/jsonl.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace metaopt::util {

namespace {

[[noreturn]] void fail(const char* what, std::size_t pos) {
  throw std::runtime_error("json: " + std::string(what) + " at byte " +
                           std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_);
          }
          // The writers only emit \u00xx control escapes; encode the
          // general case as UTF-8 anyway so foreign files round-trip.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape", pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value", pos_);
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number", start);
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error("json: value is not a " + std::string(want));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) kind_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind_ == Kind::Number) ? v->number_ : def;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind_ == Kind::String) ? v->string_ : def;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::vector<JsonValue> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<JsonValue> records;
  std::string line;
  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      records.push_back(parse_json(line));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " +
                               e.what());
    }
  }
  return records;
}

}  // namespace metaopt::util
