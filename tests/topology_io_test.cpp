// Tests for topology serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "net/topologies.h"
#include "net/topology_io.h"

namespace metaopt::net {
namespace {

TEST(TopologyIo, ParsesBasicFile) {
  std::istringstream in(R"(# test network
name demo
nodes 3
edge 0 1 100 1
edge 1 2 110        # default weight
link 0 2 50 5
)");
  const Topology topo = read_topology(in);
  EXPECT_EQ(topo.name(), "demo");
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_EQ(topo.num_edges(), 4);  // 2 directed + 1 bidirectional
  const auto direct = topo.find_edge(0, 2);
  ASSERT_TRUE(direct.has_value());
  EXPECT_DOUBLE_EQ(topo.edge(*direct).weight, 5.0);
  EXPECT_DOUBLE_EQ(topo.edge(*direct).capacity, 50.0);
  EXPECT_TRUE(topo.find_edge(2, 0).has_value());
}

TEST(TopologyIo, RoundTripsTheZoo) {
  for (const Topology& original :
       {topologies::b4(), topologies::abilene(), topologies::fig1()}) {
    std::ostringstream out;
    write_topology(out, original);
    std::istringstream in(out.str());
    const Topology parsed = read_topology(in);
    EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
    ASSERT_EQ(parsed.num_edges(), original.num_edges());
    for (EdgeId e = 0; e < original.num_edges(); ++e) {
      EXPECT_EQ(parsed.edge(e).src, original.edge(e).src);
      EXPECT_EQ(parsed.edge(e).dst, original.edge(e).dst);
      EXPECT_DOUBLE_EQ(parsed.edge(e).capacity, original.edge(e).capacity);
      EXPECT_DOUBLE_EQ(parsed.edge(e).weight, original.edge(e).weight);
    }
  }
}

TEST(TopologyIo, RejectsMissingNodes) {
  std::istringstream in("edge 0 1 10\n");
  EXPECT_THROW(read_topology(in), std::invalid_argument);
}

TEST(TopologyIo, RejectsUnknownDirective) {
  std::istringstream in("nodes 2\nfoo 1 2\n");
  EXPECT_THROW(read_topology(in), std::invalid_argument);
}

TEST(TopologyIo, RejectsBadCapacity) {
  std::istringstream in("nodes 2\nedge 0 1 -5\n");
  EXPECT_THROW(read_topology(in), std::invalid_argument);
}

TEST(TopologyIo, RejectsOutOfRangeEndpoint) {
  std::istringstream in("nodes 2\nedge 0 7 10\n");
  EXPECT_THROW(read_topology(in), std::invalid_argument);
}

TEST(TopologyIo, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(read_topology_file("/nonexistent/topo.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace metaopt::net
