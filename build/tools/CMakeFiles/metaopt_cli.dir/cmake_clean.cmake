file(REMOVE_RECURSE
  "CMakeFiles/metaopt_cli.dir/metaopt_cli.cpp.o"
  "CMakeFiles/metaopt_cli.dir/metaopt_cli.cpp.o.d"
  "metaopt"
  "metaopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
