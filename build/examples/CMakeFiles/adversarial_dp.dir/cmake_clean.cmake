file(REMOVE_RECURSE
  "CMakeFiles/adversarial_dp.dir/adversarial_dp.cpp.o"
  "CMakeFiles/adversarial_dp.dir/adversarial_dp.cpp.o.d"
  "adversarial_dp"
  "adversarial_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
