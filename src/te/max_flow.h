// FeasibleFlow (Eq. 2) and OptMaxFlow (Eq. 3).
//
// The formulation is expressed once as an InnerProblem (demands may be
// constants or outer variables) and consumed two ways: materialized and
// solved directly (ground truth / black-box oracle / primal heuristic),
// or passed through emit_kkt for the single-shot metaoptimization.
//
// We eliminate the aggregate f_k variables by substitution
// (f_k = sum_p f_k^p), so the volume row reads sum_p f_k^p <= d_k. This
// halves the KKT complementarity count without changing the polytope.
//
// Dual bounds: with unit objective coefficients the max-flow dual always
// admits an optimal point with capacity/volume multipliers <= 1 (any
// component > 1 can be clamped: it alone already covers every dual
// constraint it appears in), and bound-row multipliers <= max path hops
// + 1 by stationarity. These bounds keep the branch-and-bound relaxation
// tight; they are configurable for paranoia sweeps.
#pragma once

#include <string>
#include <vector>

#include "kkt/inner_problem.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "te/path_set.h"

namespace metaopt::te {

struct MaxFlowOptions {
  /// Capacities are multiplied by this factor (POP gives each of c
  /// partitions a 1/c share, Eq. 6).
  double capacity_scale = 1.0;
  /// Optional demand mask: pairs with include[k] == false get no flow
  /// variables (POP partitions, Eq. 6).
  const std::vector<bool>* include = nullptr;
  /// Optional per-edge capacity override (residual capacities in the
  /// procedural DP solver). Size must equal topo.num_edges().
  const std::vector<double>* capacity_override = nullptr;
  /// Multiplier applied to the analytic dual bounds; <= 0 disables dual
  /// bounds entirely (sound but slow).
  double dual_bound_scale = 1.0;
  /// Certify the direct solve (check::certify_lp) and record the verdict
  /// in MaxFlowResult::certified. Defaults to the solver-wide policy
  /// (on in Debug, opt-in in Release); explain probes force it on.
  bool certify = lp::kCertifyByDefault;
};

/// The flow variables and inner problem of one OptMaxFlow instance.
struct FlowEncoding {
  /// path_flow[k][p] is f_k^p; pairs that are masked out or have no
  /// paths get an empty vector.
  std::vector<std::vector<lp::Var>> path_flow;
  /// sum of all flow variables — the inner objective (total carried
  /// demand).
  lp::LinExpr total_flow;
  kkt::InnerProblem inner;

  FlowEncoding() : inner(lp::ObjSense::Maximize) {}
};

/// Adds OptMaxFlow's variables to `model` and returns its encoding.
/// `demand[k]` is d_k as a linear expression (a constant for direct
/// solves, an outer variable for adversarial search); its size must
/// equal paths.num_pairs().
FlowEncoding build_max_flow(lp::Model& model, const net::Topology& topo,
                            const PathSet& paths,
                            const std::vector<lp::LinExpr>& demand,
                            const std::string& prefix,
                            const MaxFlowOptions& options = {});

/// Result of a direct OptMaxFlow solve.
struct MaxFlowResult {
  lp::SolveStatus status = lp::SolveStatus::Error;
  double total_flow = 0.0;
  /// flow[k][p] aligned with the path set (empty for masked pairs).
  std::vector<std::vector<double>> path_flow;
  /// True when the solve ran with certification and passed.
  bool certified = false;
};

/// Per-edge load of a path-flow solution (size topo.num_edges()).
std::vector<double> edge_loads(const net::Topology& topo, const PathSet& paths,
                               const std::vector<std::vector<double>>& flow);

/// Solves OptMaxFlow directly for concrete demand volumes.
MaxFlowResult solve_max_flow(const net::Topology& topo, const PathSet& paths,
                             const std::vector<double>& volumes,
                             const MaxFlowOptions& options = {});

}  // namespace metaopt::te
