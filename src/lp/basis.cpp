#include "lp/basis.h"

#include <cmath>

namespace metaopt::lp {

bool BasisFactor::factorize(const BoundedForm& form,
                            const std::vector<int>& basic, double pivot_tol) {
  const int m = form.num_rows;
  m_ = 0;
  pivots_ = 0;
  factorized_empty_ = m == 0;
  if (m == 0) return true;
  if (static_cast<int>(basic.size()) != m) return false;

  // Assemble B column-by-column into `scratch_` (row-major m x m) and
  // reduce [B | I] by Gauss-Jordan with partial pivoting, leaving the
  // inverse in inv_.
  scratch_.assign(static_cast<std::size_t>(m) * m, 0.0);
  inv_.assign(static_cast<std::size_t>(m) * m, 0.0);
  for (int k = 0; k < m; ++k) {
    const int j = basic[k];
    if (j < 0 || j >= form.num_cols()) return false;
    if (j < form.num_structs) {
      for (int t = form.col_start[j]; t < form.col_start[j + 1]; ++t) {
        scratch_[static_cast<std::size_t>(form.col_row[t]) * m + k] =
            form.col_val[t];
      }
    } else {
      // Logical and artificial columns are both +e_row.
      const int row = j < form.num_structs + form.num_rows
                          ? j - form.num_structs
                          : j - form.num_structs - form.num_rows;
      scratch_[static_cast<std::size_t>(row) * m + k] = 1.0;
    }
    inv_[static_cast<std::size_t>(k) * m + k] = 1.0;
  }

  double* b = scratch_.data();
  double* inv = inv_.data();
  for (int col = 0; col < m; ++col) {
    int pivot_row = -1;
    double best = pivot_tol;
    for (int i = col; i < m; ++i) {
      const double a = std::abs(b[static_cast<std::size_t>(i) * m + col]);
      if (a > best) {
        best = a;
        pivot_row = i;
      }
    }
    if (pivot_row < 0) return false;
    if (pivot_row != col) {
      for (int k = 0; k < m; ++k) {
        std::swap(b[static_cast<std::size_t>(pivot_row) * m + k],
                  b[static_cast<std::size_t>(col) * m + k]);
        std::swap(inv[static_cast<std::size_t>(pivot_row) * m + k],
                  inv[static_cast<std::size_t>(col) * m + k]);
      }
    }
    const double piv = b[static_cast<std::size_t>(col) * m + col];
    const double scale = 1.0 / piv;
    for (int k = 0; k < m; ++k) {
      b[static_cast<std::size_t>(col) * m + k] *= scale;
      inv[static_cast<std::size_t>(col) * m + k] *= scale;
    }
    for (int i = 0; i < m; ++i) {
      if (i == col) continue;
      const double factor = b[static_cast<std::size_t>(i) * m + col];
      if (factor == 0.0) continue;
      for (int k = 0; k < m; ++k) {
        b[static_cast<std::size_t>(i) * m + k] -=
            factor * b[static_cast<std::size_t>(col) * m + k];
        inv[static_cast<std::size_t>(i) * m + k] -=
            factor * inv[static_cast<std::size_t>(col) * m + k];
      }
    }
  }
  m_ = m;
  return true;
}

void BasisFactor::ftran(std::vector<double>& x) const {
  if (m_ == 0) return;
  work_.assign(m_, 0.0);
  const double* inv = inv_.data();
  for (int i = 0; i < m_; ++i) {
    const double* row = inv + static_cast<std::size_t>(i) * m_;
    double acc = 0.0;
    for (int k = 0; k < m_; ++k) acc += row[k] * x[k];
    work_[i] = acc;
  }
  for (int i = 0; i < m_; ++i) x[i] = work_[i];
}

void BasisFactor::btran(std::vector<double>& x) const {
  if (m_ == 0) return;
  work_.assign(m_, 0.0);
  const double* inv = inv_.data();
  // y = inv' x: accumulate each row of inv scaled by x[i].
  for (int i = 0; i < m_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = inv + static_cast<std::size_t>(i) * m_;
    for (int k = 0; k < m_; ++k) work_[k] += xi * row[k];
  }
  for (int i = 0; i < m_; ++i) x[i] = work_[i];
}

bool BasisFactor::update(int r, const std::vector<double>& w,
                         double pivot_tol) {
  if (m_ == 0) return false;
  const double piv = w[r];
  if (std::abs(piv) <= pivot_tol) return false;
  double* inv = inv_.data();
  const double scale = 1.0 / piv;
  double* row_r = inv + static_cast<std::size_t>(r) * m_;
  for (int k = 0; k < m_; ++k) row_r[k] *= scale;
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    const double factor = w[i];
    if (factor == 0.0) continue;
    double* row_i = inv + static_cast<std::size_t>(i) * m_;
    for (int k = 0; k < m_; ++k) row_i[k] -= factor * row_r[k];
  }
  ++pivots_;
  return true;
}

}  // namespace metaopt::lp
