file(REMOVE_RECURSE
  "CMakeFiles/kkt_test.dir/kkt_test.cpp.o"
  "CMakeFiles/kkt_test.dir/kkt_test.cpp.o.d"
  "kkt_test"
  "kkt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kkt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
