#include "domains/domains.h"

#include <mutex>

#include "binpack/instance.h"
#include "domains/te_instances.h"
#include "heur/instance.h"

namespace metaopt::domains {

void register_builtin() {
  static std::once_flag once;
  std::call_once(once, [] {
    heur::register_heuristic("dp", [](const heur::InstanceConfig& config) {
      return std::make_unique<TeDpInstance>(config);
    });
    heur::register_heuristic("pop", [](const heur::InstanceConfig& config) {
      return std::make_unique<TePopInstance>(config);
    });
    heur::register_heuristic("ffd", [](const heur::InstanceConfig& config) {
      return binpack::make_binpack_instance(config, /*decreasing=*/true);
    });
    heur::register_heuristic("ff", [](const heur::InstanceConfig& config) {
      return binpack::make_binpack_instance(config, /*decreasing=*/false);
    });
  });
}

}  // namespace metaopt::domains
