# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lp_test "/root/repo/build/tests/lp_test")
set_tests_properties(lp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mip_test "/root/repo/build/tests/mip_test")
set_tests_properties(mip_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kkt_test "/root/repo/build/tests/kkt_test")
set_tests_properties(kkt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(te_test "/root/repo/build/tests/te_test")
set_tests_properties(te_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(search_test "/root/repo/build/tests/search_test")
set_tests_properties(search_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(client_split_test "/root/repo/build/tests/client_split_test")
set_tests_properties(client_split_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sorting_network_test "/root/repo/build/tests/sorting_network_test")
set_tests_properties(sorting_network_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(primal_dual_test "/root/repo/build/tests/primal_dual_test")
set_tests_properties(primal_dual_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(max_min_test "/root/repo/build/tests/max_min_test")
set_tests_properties(max_min_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(presolve_test "/root/repo/build/tests/presolve_test")
set_tests_properties(presolve_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(topology_io_test "/root/repo/build/tests/topology_io_test")
set_tests_properties(topology_io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;metaopt_test;/root/repo/tests/CMakeLists.txt;0;")
