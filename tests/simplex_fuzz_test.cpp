// Differential fuzz harness for the revised simplex core.
//
// Seeded random LPs (mixed <=/>=/== rows, negative right-hand sides,
// free/bounded/fixed variables, both objective senses) are solved three
// ways and must agree:
//   * the dense-tableau solver (reference),
//   * the cold revised simplex (via the warm-start ladder with no hint),
//   * the warm dual simplex re-solving a bound-tightened child from the
//     parent-optimal basis, against a cold solve of the same child.
// Optimal solves additionally pass check::certify_lp with duals.
//
// A second harness drives hostile structured families — highly
// degenerate RHS (many rows active at one vertex), near-singular bases,
// singleton-heavy columns, totally-unimodular flow matrices — through a
// three-way differential: dense tableau vs cold revised with the sparse
// LU factor vs cold revised with the dense explicit inverse, plus
// sparse-vs-dense warm child re-solves from each root basis.
//
// The root seed comes from METAOPT_FUZZ_SEED when set (CI rotates it per
// run and echoes it for replay); instances derive per-index streams with
// util::derive_seed, so one failing index reproduces in isolation.
// METAOPT_FUZZ_COUNT scales the instance counts (default 600 random +
// 4 x 150 hostile; sanitizer jobs dial it down).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/certify.h"
#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "lp/solution.h"
#include "util/rng.h"

namespace metaopt {
namespace {

using lp::Model;
using lp::ObjSense;
using lp::Solution;
using lp::SolveStatus;

constexpr double kObjTol = 1e-6;

std::uint64_t root_seed() {
  if (const char* env = std::getenv("METAOPT_FUZZ_SEED")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    return static_cast<std::uint64_t>(parsed);
  }
  return 20260807;
}

/// Random-family instance count: METAOPT_FUZZ_COUNT when set (floor 10),
/// else 600. Hostile families run a quarter of this each.
int instance_count() {
  if (const char* env = std::getenv("METAOPT_FUZZ_COUNT")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<int>(std::max(10L, parsed));
  }
  return 600;
}

/// Random LP in the shapes the tree search produces: small, well-scaled,
/// heavy on bound structure.
Model make_random_lp(util::Rng& rng) {
  Model model;
  const int n = rng.uniform_int(1, 6);
  const int m = rng.uniform_int(0, 5);
  std::vector<lp::Var> vars;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-5.0, 5.0);
    const double width = rng.uniform(0.0, 6.0);
    double lb;
    double ub;
    switch (rng.uniform_int(0, 4)) {
      case 0: lb = lo; ub = lo + width; break;         // boxed
      case 1: lb = lo; ub = lp::kInf; break;           // lower only
      case 2: lb = -lp::kInf; ub = lo; break;          // upper only
      case 3: lb = -lp::kInf; ub = lp::kInf; break;    // free
      default: lb = lo; ub = lo; break;                // fixed
    }
    vars.push_back(model.add_var("x" + std::to_string(j), lb, ub));
  }
  // Reference point inside the boxes: rows built around it are mostly
  // satisfiable, so Optimal roots dominate while infeasible and
  // unbounded instances still occur (negative slack draws, free vars).
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    const double lo = std::isfinite(model.var(j).lb) ? model.var(j).lb : -8.0;
    const double hi = std::isfinite(model.var(j).ub) ? model.var(j).ub : 8.0;
    x0[j] = rng.uniform(lo, std::max(lo, hi));
  }
  for (int r = 0; r < m; ++r) {
    lp::LinExpr expr;
    double activity = 0.0;
    int terms = 0;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.7)) continue;
      double coef = rng.uniform(-5.0, 5.0);
      if (std::abs(coef) < 0.05) coef = 0.5;  // keep rows non-degenerate
      expr.add_term(vars[j], coef);
      activity += coef * x0[j];
      ++terms;
    }
    if (terms == 0) {
      expr.add_term(vars[0], 1.0);
      activity = x0[0];
    }
    switch (rng.uniform_int(0, 2)) {
      case 0:
        model.add_constraint(expr <= lp::LinExpr(activity +
                                                 rng.uniform(-1.0, 4.0)));
        break;
      case 1:
        model.add_constraint(expr >= lp::LinExpr(activity +
                                                 rng.uniform(-4.0, 1.0)));
        break;
      default:
        model.add_constraint(expr == lp::LinExpr(activity +
                                                 rng.uniform(-0.3, 0.3)));
        break;
    }
  }
  lp::LinExpr obj(rng.uniform(-2.0, 2.0));
  if (!rng.bernoulli(0.1)) {  // keep some pure-feasibility objectives
    for (int j = 0; j < n; ++j) obj.add_term(vars[j], rng.uniform(-3.0, 3.0));
  }
  model.set_objective(rng.bernoulli(0.5) ? ObjSense::Minimize
                                         : ObjSense::Maximize,
                      obj);
  return model;
}

void collect_bounds(const Model& model, std::vector<double>& lb,
                    std::vector<double>& ub) {
  lb.resize(model.num_vars());
  ub.resize(model.num_vars());
  for (lp::VarId v = 0; v < model.num_vars(); ++v) {
    lb[v] = model.var(v).lb;
    ub[v] = model.var(v).ub;
  }
}

/// Tightens one or two variable boxes the way branching does; biased
/// around the parent-optimal point so both still-feasible and
/// newly-infeasible children occur.
void tighten_child_bounds(util::Rng& rng, const Solution& parent,
                          std::vector<double>& lb, std::vector<double>& ub) {
  const int n = static_cast<int>(lb.size());
  const int tightenings = rng.uniform_int(1, 2);
  for (int t = 0; t < tightenings; ++t) {
    const int v = rng.uniform_int(0, n - 1);
    if (ub[v] - lb[v] <= 0.0) continue;  // already fixed
    const double x = parent.values.empty() ? 0.0 : parent.values[v];
    const double shift = rng.uniform(0.0, 2.0);
    if (rng.bernoulli(0.5)) {
      lb[v] = std::max(lb[v], x + (rng.bernoulli(0.3) ? shift : -shift));
      if (std::isfinite(ub[v])) lb[v] = std::min(lb[v], ub[v] + 1.0);
    } else {
      ub[v] = std::min(ub[v], x + (rng.bernoulli(0.3) ? -shift : shift));
      if (std::isfinite(lb[v])) ub[v] = std::max(ub[v], lb[v] - 1.0);
    }
    if (rng.bernoulli(0.25)) {  // branch-style fixing
      const double fix = rng.bernoulli(0.5) ? lb[v] : ub[v];
      if (std::isfinite(fix)) {
        lb[v] = fix;
        ub[v] = fix;
      }
    }
  }
}

// ---- hostile structured families ----
//
// Each generator targets one classic failure mode of simplex
// factorization / anti-degeneracy machinery. They are feasible-biased
// (rows built around an interior reference point) so the differential
// mostly compares Optimal answers, the hard case.

/// Highly degenerate RHS: every row exactly active at one reference
/// point, so the optimal vertex has far more tight rows than dimensions
/// and ties dominate every ratio test.
Model make_degenerate_rhs_lp(util::Rng& rng) {
  Model model;
  const int n = rng.uniform_int(2, 5);
  const int m = rng.uniform_int(4, 10);
  std::vector<lp::Var> vars;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    vars.push_back(model.add_var("x" + std::to_string(j), 0.0, 10.0));
    x0[j] = rng.uniform(1.0, 9.0);
  }
  for (int r = 0; r < m; ++r) {
    lp::LinExpr expr;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.8)) continue;
      const double coef = rng.uniform(-4.0, 4.0);
      expr.add_term(vars[j], coef);
      activity += coef * x0[j];
    }
    // rhs == exact activity: the row is tight at x0 whichever sense.
    switch (rng.uniform_int(0, 2)) {
      case 0: model.add_constraint(expr <= lp::LinExpr(activity)); break;
      case 1: model.add_constraint(expr >= lp::LinExpr(activity)); break;
      default: model.add_constraint(expr == lp::LinExpr(activity)); break;
    }
  }
  lp::LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add_term(vars[j], rng.uniform(-3.0, 3.0));
  model.set_objective(rng.bernoulli(0.5) ? ObjSense::Minimize
                                         : ObjSense::Maximize,
                      obj);
  return model;
}

/// Near-singular bases: each row is a scalar multiple of the previous
/// one plus noise at a magnitude stepping down to 1e-7, so candidate
/// bases range from comfortably factorizable to just above the pivot
/// tolerance. Exercises the Markowitz threshold and the singularity
/// bail-out path.
Model make_near_singular_lp(util::Rng& rng) {
  Model model;
  const int n = rng.uniform_int(3, 6);
  const int m = rng.uniform_int(3, 6);
  std::vector<lp::Var> vars;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    vars.push_back(model.add_var("x" + std::to_string(j), -5.0, 5.0));
    x0[j] = rng.uniform(-4.0, 4.0);
  }
  std::vector<double> base(n);
  for (int j = 0; j < n; ++j) base[j] = rng.uniform(-3.0, 3.0);
  for (int r = 0; r < m; ++r) {
    const double lambda = rng.uniform(0.5, 2.0);
    const double eps = std::pow(10.0, -rng.uniform(1.0, 7.0));
    lp::LinExpr expr;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      base[j] = lambda * base[j] + eps * rng.uniform(-1.0, 1.0);
      expr.add_term(vars[j], base[j]);
      activity += base[j] * x0[j];
    }
    if (rng.bernoulli(0.5)) {
      model.add_constraint(expr <= lp::LinExpr(activity +
                                               rng.uniform(0.0, 2.0)));
    } else {
      model.add_constraint(expr >= lp::LinExpr(activity -
                                               rng.uniform(0.0, 2.0)));
    }
  }
  lp::LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add_term(vars[j], rng.uniform(-2.0, 2.0));
  model.set_objective(rng.bernoulli(0.5) ? ObjSense::Minimize
                                         : ObjSense::Maximize,
                      obj);
  return model;
}

/// Singleton-heavy columns: most structural columns touch exactly one
/// row (the shape presolve-reduced big-M models leave behind), plus a
/// couple of dense coupling columns. The sparse LU should pivot the
/// singletons essentially for free; the differential checks it does so
/// *correctly*.
Model make_singleton_heavy_lp(util::Rng& rng) {
  Model model;
  const int m = rng.uniform_int(2, 5);
  const int singles = rng.uniform_int(m, 2 * m);
  const int dense = rng.uniform_int(1, 2);
  std::vector<lp::Var> vars;
  for (int j = 0; j < singles + dense; ++j) {
    vars.push_back(model.add_var("x" + std::to_string(j), 0.0, 8.0));
  }
  std::vector<lp::LinExpr> rows(m);
  std::vector<double> activity(m, 0.0);
  for (int j = 0; j < singles; ++j) {
    const int r = rng.uniform_int(0, m - 1);
    const double coef = rng.uniform(0.5, 4.0) * (rng.bernoulli(0.5) ? 1 : -1);
    rows[r].add_term(vars[j], coef);
    activity[r] += coef * 2.0;  // reference point x0 = 2 everywhere
  }
  for (int j = singles; j < singles + dense; ++j) {
    for (int r = 0; r < m; ++r) {
      const double coef = rng.uniform(-3.0, 3.0);
      rows[r].add_term(vars[j], coef);
      activity[r] += coef * 2.0;
    }
  }
  for (int r = 0; r < m; ++r) {
    if (rng.bernoulli(0.5)) {
      model.add_constraint(rows[r] <=
                           lp::LinExpr(activity[r] + rng.uniform(0.0, 3.0)));
    } else {
      model.add_constraint(rows[r] >=
                           lp::LinExpr(activity[r] - rng.uniform(0.0, 3.0)));
    }
  }
  lp::LinExpr obj;
  for (std::size_t j = 0; j < vars.size(); ++j) {
    obj.add_term(vars[j], rng.uniform(-2.0, 2.0));
  }
  model.set_objective(rng.bernoulli(0.5) ? ObjSense::Minimize
                                         : ObjSense::Maximize,
                      obj);
  return model;
}

/// Totally-unimodular min-cost flow: node-arc incidence equality rows
/// (every entry 0/±1), a Hamiltonian cycle for guaranteed feasibility
/// plus random chords, one source/sink pair. Every basis is a spanning
/// tree with determinant ±1 — integral vertices, heavy degeneracy when
/// arc capacities tie.
Model make_unimodular_flow_lp(util::Rng& rng) {
  Model model;
  const int nodes = rng.uniform_int(3, 6);
  struct Arc { int from, to; };
  std::vector<Arc> arcs;
  for (int v = 0; v < nodes; ++v) arcs.push_back({v, (v + 1) % nodes});
  const int chords = rng.uniform_int(0, nodes);
  for (int c = 0; c < chords; ++c) {
    const int u = rng.uniform_int(0, nodes - 1);
    const int v = rng.uniform_int(0, nodes - 1);
    if (u != v) arcs.push_back({u, v});
  }
  std::vector<lp::Var> flow;
  lp::LinExpr obj;
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    // Integer capacities on purpose: ties everywhere.
    flow.push_back(model.add_var("f" + std::to_string(a), 0.0,
                                 static_cast<double>(rng.uniform_int(3, 10))));
    obj.add_term(flow[a], static_cast<double>(rng.uniform_int(-5, 5)));
  }
  const int source = 0;
  const int sink = rng.uniform_int(1, nodes - 1);
  const double supply = static_cast<double>(rng.uniform_int(0, 3));
  for (int v = 0; v < nodes; ++v) {
    lp::LinExpr balance;
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      if (arcs[a].from == v) balance.add_term(flow[a], 1.0);
      if (arcs[a].to == v) balance.add_term(flow[a], -1.0);
    }
    const double rhs = v == source ? supply : (v == sink ? -supply : 0.0);
    model.add_constraint(balance == lp::LinExpr(rhs));
  }
  model.set_objective(ObjSense::Minimize, obj);
  return model;
}

/// Statuses that must match across solver paths. IterationLimit /
/// TimeLimit never trigger at these sizes; anything else is a bug.
bool terminal(SolveStatus s) {
  return s == SolveStatus::Optimal || s == SolveStatus::Infeasible ||
         s == SolveStatus::Unbounded;
}

void expect_same_answer(const Solution& got, const Solution& ref,
                        const std::string& what) {
  ASSERT_TRUE(terminal(ref.status))
      << what << ": reference not terminal: " << lp::to_string(ref.status);
  ASSERT_TRUE(terminal(got.status))
      << what << ": not terminal: " << lp::to_string(got.status);
  ASSERT_EQ(got.status, ref.status)
      << what << ": " << lp::to_string(got.status) << " vs reference "
      << lp::to_string(ref.status);
  if (ref.status == SolveStatus::Optimal) {
    const double scale = std::max(1.0, std::abs(ref.objective));
    EXPECT_NEAR(got.objective, ref.objective, kObjTol * scale) << what;
  }
}

void certify_optimal(const Model& model, const Solution& sol,
                     const std::vector<double>& lb,
                     const std::vector<double>& ub, const std::string& what) {
  if (sol.status != SolveStatus::Optimal) return;
  lp::SimplexOptions opt;
  const check::Certificate cert = check::certify_lp(
      model, sol, check::CertifyOptions::for_lp(opt), &lb, &ub);
  EXPECT_TRUE(cert.ok) << what << ": " << cert.to_string();
}

TEST(SimplexFuzz, WarmAndColdAgreeWithTableauAndCertifier) {
  const std::uint64_t seed = root_seed();
  // Echoed so a CI failure line carries everything needed to replay.
  std::printf("[simplex_fuzz] root seed = %llu\n",
              static_cast<unsigned long long>(seed));

  lp::SimplexOptions opt;
  opt.want_duals = true;
  opt.certify = false;  // the test certifies explicitly, with messages

  int optimal_roots = 0;
  int warm_dual_answers = 0;
  int warm_attempts = 0;
  int tableau_fallbacks = 0;

  const int kInstances = instance_count();
  for (int i = 0; i < kInstances; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i) + " (root seed " +
                 std::to_string(seed) + ")");
    util::Rng rng(util::derive_seed(seed, static_cast<std::uint64_t>(i)));
    const Model model = make_random_lp(rng);
    std::vector<double> lb, ub;
    collect_bounds(model, lb, ub);

    const lp::SimplexSolver solver(opt);

    // Reference: dense tableau.
    const Solution ref = solver.solve_with_bounds(model, lb, ub);
    ASSERT_TRUE(terminal(ref.status));
    certify_optimal(model, ref, lb, ub, "tableau root");

    // Cold revised via the ladder (no hint).
    lp::WarmStartContext warm(model);
    const Solution cold = solver.solve_with_bounds(model, lb, ub, warm);
    if (warm.last_path == lp::WarmStartContext::Path::Tableau) {
      ++tableau_fallbacks;
    }
    expect_same_answer(cold, ref, "cold revised vs tableau");
    certify_optimal(model, cold, lb, ub, "cold revised root");
    std::shared_ptr<const lp::Basis> root_basis = warm.take_result();

    if (cold.status != SolveStatus::Optimal) continue;
    ++optimal_roots;
    ASSERT_TRUE(root_basis != nullptr ||
                warm.last_path == lp::WarmStartContext::Path::Tableau);
    if (root_basis == nullptr) continue;

    // Child: tighten bounds, re-solve warm from the parent basis and
    // compare against an independent cold solve of the same child.
    std::vector<double> clb = lb, cub = ub;
    tighten_child_bounds(rng, cold, clb, cub);
    bool empty_box = false;
    for (std::size_t v = 0; v < clb.size(); ++v) {
      if (clb[v] > cub[v]) empty_box = true;
    }
    if (empty_box) continue;

    const Solution child_ref = solver.solve_with_bounds(model, clb, cub);
    ASSERT_TRUE(terminal(child_ref.status));

    warm.hint = root_basis.get();
    ++warm_attempts;
    const Solution child_warm = solver.solve_with_bounds(model, clb, cub, warm);
    if (warm.last_path == lp::WarmStartContext::Path::WarmDual) {
      ++warm_dual_answers;
    }
    expect_same_answer(child_warm, child_ref, "warm child vs cold child");
    certify_optimal(model, child_warm, clb, cub, "warm child");

    // Sibling: a second child warmed from the SAME parent basis through
    // the same context. The first child's pivots mutated the engine's
    // cached factorization, so this exercises the cache-staleness path
    // branch-and-bound hits on every sibling pair.
    std::vector<double> slb = lb, sub = ub;
    tighten_child_bounds(rng, cold, slb, sub);
    bool sibling_empty = false;
    for (std::size_t v = 0; v < slb.size(); ++v) {
      if (slb[v] > sub[v]) sibling_empty = true;
    }
    if (sibling_empty) continue;
    const Solution sib_ref = solver.solve_with_bounds(model, slb, sub);
    ASSERT_TRUE(terminal(sib_ref.status));
    warm.hint = root_basis.get();
    ++warm_attempts;
    const Solution sib_warm = solver.solve_with_bounds(model, slb, sub, warm);
    if (warm.last_path == lp::WarmStartContext::Path::WarmDual) {
      ++warm_dual_answers;
    }
    expect_same_answer(sib_warm, sib_ref, "sibling warm child vs cold child");
    certify_optimal(model, sib_warm, slb, sub, "sibling warm child");
  }

  std::printf(
      "[simplex_fuzz] %d instances: %d optimal roots, %d/%d warm-dual "
      "answers, %d tableau fallbacks\n",
      kInstances, optimal_roots, warm_dual_answers, warm_attempts,
      tableau_fallbacks);

  // The revised core must carry its weight: the ladder may fall back to
  // the tableau occasionally, but not habitually.
  EXPECT_LE(tableau_fallbacks, kInstances / 20);
  ASSERT_GT(warm_attempts, kInstances / 4);
  EXPECT_GE(warm_dual_answers, (warm_attempts * 3) / 4);
}

TEST(SimplexFuzz, ConcurrentWarmSolvesFromSharedBasisBitIdentical) {
  // The parallel-B&B sharing contract, at the LP layer: sibling workers
  // warm-solve the same child box from the SAME shared parent basis,
  // each through its own WarmStartContext, concurrently. Every worker's
  // answer must be bit-identical (status, objective, values) to a
  // serial warm solve — racing engines must not perturb each other and
  // the factor cache must not make any solve path-dependent.
  const std::uint64_t seed = root_seed();
  lp::SimplexOptions opt;
  opt.certify = false;

  constexpr int kConcurrentInstances = 60;
  constexpr int kWorkers = 4;
  int exercised = 0;
  for (int i = 0; i < kConcurrentInstances; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i) + " (root seed " +
                 std::to_string(seed) + ")");
    util::Rng rng(util::derive_seed(seed, 100000 + i));
    const Model model = make_random_lp(rng);
    std::vector<double> lb, ub;
    collect_bounds(model, lb, ub);
    const lp::SimplexSolver solver(opt);

    lp::WarmStartContext parent(model);
    const Solution root = solver.solve_with_bounds(model, lb, ub, parent);
    const std::shared_ptr<const lp::Basis> basis = parent.take_result();
    if (root.status != SolveStatus::Optimal || basis == nullptr) continue;

    std::vector<double> clb = lb, cub = ub;
    tighten_child_bounds(rng, root, clb, cub);
    bool empty_box = false;
    for (std::size_t v = 0; v < clb.size(); ++v) {
      if (clb[v] > cub[v]) empty_box = true;
    }
    if (empty_box) continue;
    ++exercised;

    // Serial reference for the child, from the shared basis.
    lp::WarmStartContext serial(model);
    serial.hint = basis.get();
    const Solution ref = solver.solve_with_bounds(model, clb, cub, serial);
    ASSERT_TRUE(terminal(ref.status));

    std::vector<Solution> results(kWorkers);
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        lp::WarmStartContext ctx(model);
        ctx.hint = basis.get();
        results[w] = solver.solve_with_bounds(model, clb, cub, ctx);
      });
    }
    for (std::thread& t : workers) t.join();

    for (int w = 0; w < kWorkers; ++w) {
      ASSERT_EQ(results[w].status, ref.status) << "worker " << w;
      if (ref.status != SolveStatus::Optimal) continue;
      EXPECT_EQ(results[w].objective, ref.objective) << "worker " << w;
      ASSERT_EQ(results[w].values.size(), ref.values.size()) << "worker " << w;
      for (std::size_t v = 0; v < ref.values.size(); ++v) {
        EXPECT_EQ(results[w].values[v], ref.values[v])
            << "worker " << w << " var " << v;
      }
    }
  }
  // The family is Optimal-heavy; if the loop stopped exercising the
  // concurrent path the test would silently go vacuous.
  EXPECT_GT(exercised, kConcurrentInstances / 3);
}

TEST(SimplexFuzz, HostileFamiliesSparseDenseTableauDifferential) {
  const std::uint64_t seed = root_seed();
  std::printf("[simplex_fuzz] hostile root seed = %llu\n",
              static_cast<unsigned long long>(seed));
  lp::SimplexOptions opt;
  opt.want_duals = true;
  opt.certify = false;
  const lp::SimplexSolver solver(opt);

  struct Family {
    const char* name;
    Model (*make)(util::Rng&);
  };
  const Family families[] = {
      {"degenerate_rhs", make_degenerate_rhs_lp},
      {"near_singular", make_near_singular_lp},
      {"singleton_heavy", make_singleton_heavy_lp},
      {"unimodular_flow", make_unimodular_flow_lp},
  };
  const int per_family = std::max(instance_count() / 4, 10);

  int optimal_roots = 0;
  int warm_pairs = 0;
  for (std::size_t fi = 0; fi < std::size(families); ++fi) {
    const Family& family = families[fi];
    for (int i = 0; i < per_family; ++i) {
      SCOPED_TRACE(std::string(family.name) + " instance " +
                   std::to_string(i) + " (root seed " + std::to_string(seed) +
                   ")");
      util::Rng rng(util::derive_seed(
          seed, 200000 + fi * 1000000 + static_cast<std::uint64_t>(i)));
      const Model model = family.make(rng);
      std::vector<double> lb, ub;
      collect_bounds(model, lb, ub);

      // Three-way root differential: tableau is the reference, both
      // revised-factor backends must reproduce it.
      const Solution ref = solver.solve_with_bounds(model, lb, ub);
      ASSERT_TRUE(terminal(ref.status));
      certify_optimal(model, ref, lb, ub, "tableau root");

      lp::WarmStartContext sparse_ctx(model, lp::FactorKind::SparseLU);
      const Solution cold_sparse =
          solver.solve_with_bounds(model, lb, ub, sparse_ctx);
      expect_same_answer(cold_sparse, ref, "cold sparse vs tableau");
      certify_optimal(model, cold_sparse, lb, ub, "cold sparse root");

      lp::WarmStartContext dense_ctx(model, lp::FactorKind::DenseInverse);
      const Solution cold_dense =
          solver.solve_with_bounds(model, lb, ub, dense_ctx);
      expect_same_answer(cold_dense, ref, "cold dense vs tableau");
      certify_optimal(model, cold_dense, lb, ub, "cold dense root");

      const std::shared_ptr<const lp::Basis> sparse_basis =
          sparse_ctx.take_result();
      const std::shared_ptr<const lp::Basis> dense_basis =
          dense_ctx.take_result();
      if (cold_sparse.status != SolveStatus::Optimal) continue;
      ++optimal_roots;
      if (sparse_basis == nullptr || dense_basis == nullptr) continue;

      // Warm child re-solve, sparse vs dense, each from its own root
      // basis, both against an independent tableau solve of the child.
      std::vector<double> clb = lb, cub = ub;
      tighten_child_bounds(rng, cold_sparse, clb, cub);
      bool empty_box = false;
      for (std::size_t v = 0; v < clb.size(); ++v) {
        if (clb[v] > cub[v]) empty_box = true;
      }
      if (empty_box) continue;

      const Solution child_ref = solver.solve_with_bounds(model, clb, cub);
      ASSERT_TRUE(terminal(child_ref.status));

      sparse_ctx.hint = sparse_basis.get();
      const Solution child_sparse =
          solver.solve_with_bounds(model, clb, cub, sparse_ctx);
      expect_same_answer(child_sparse, child_ref, "warm sparse child");
      certify_optimal(model, child_sparse, clb, cub, "warm sparse child");

      dense_ctx.hint = dense_basis.get();
      const Solution child_dense =
          solver.solve_with_bounds(model, clb, cub, dense_ctx);
      expect_same_answer(child_dense, child_ref, "warm dense child");
      certify_optimal(model, child_dense, clb, cub, "warm dense child");
      ++warm_pairs;
    }
  }
  std::printf(
      "[simplex_fuzz] hostile: %d optimal roots, %d warm sparse/dense "
      "pairs over %d instances/family\n",
      optimal_roots, warm_pairs, per_family);
  // Feasible-biased generators: if Optimal stops dominating, the
  // families regressed into vacuous coverage.
  const int total =
      per_family * static_cast<int>(std::size(families));
  EXPECT_GT(optimal_roots, total / 3);
  EXPECT_GT(warm_pairs, total / 6);
}

}  // namespace
}  // namespace metaopt
