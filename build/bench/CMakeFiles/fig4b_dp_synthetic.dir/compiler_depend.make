# Empty compiler generated dependencies file for fig4b_dp_synthetic.
# This may be replaced when dependencies are built.
