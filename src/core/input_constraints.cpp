#include "core/input_constraints.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/tolerances.h"

namespace metaopt::core {

namespace {

constexpr double kTol = tol::kFeasTol;

int count_active(const std::vector<lp::Var>& demand) {
  int n = 0;
  for (const lp::Var v : demand) {
    if (v.valid()) ++n;
  }
  return n;
}

}  // namespace

ConstraintArtifacts apply_input_constraints(lp::Model& model,
                                            const std::vector<lp::Var>& demand,
                                            const InputConstraints& constraints,
                                            double demand_ub) {
  ConstraintArtifacts artifacts;

  for (std::size_t g = 0; g < constraints.goalposts.size(); ++g) {
    const Goalpost& gp = constraints.goalposts[g];
    if (gp.reference.size() != demand.size()) {
      throw std::invalid_argument("goalpost reference size mismatch");
    }
    if (!gp.mask.empty() && gp.mask.size() != demand.size()) {
      throw std::invalid_argument("goalpost mask size mismatch");
    }
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      if (!gp.mask.empty() && !gp.mask[k]) continue;
      const std::string base =
          "goal" + std::to_string(g) + "[" + std::to_string(k) + "]";
      model.add_constraint(
          lp::LinExpr(demand[k]) <=
              lp::LinExpr(gp.reference[k] + gp.max_deviation),
          base + ".hi");
      model.add_constraint(
          lp::LinExpr(demand[k]) >=
              lp::LinExpr(std::max(0.0, gp.reference[k] - gp.max_deviation)),
          base + ".lo");
    }
  }

  if (constraints.mean_band) {
    const int n = count_active(demand);
    if (n == 0) throw std::invalid_argument("mean_band with no demand vars");
    artifacts.mean_var = model.add_var("d_mean", 0.0, demand_ub);
    lp::LinExpr sum;
    for (const lp::Var v : demand) {
      if (v.valid()) sum += lp::LinExpr(v);
    }
    model.add_constraint(
        sum == static_cast<double>(n) * lp::LinExpr(artifacts.mean_var),
        "mean_def");
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      model.add_constraint(lp::LinExpr(demand[k]) -
                                   lp::LinExpr(artifacts.mean_var) <=
                               lp::LinExpr(*constraints.mean_band),
                           "mean_hi[" + std::to_string(k) + "]");
      model.add_constraint(lp::LinExpr(artifacts.mean_var) -
                                   lp::LinExpr(demand[k]) <=
                               lp::LinExpr(*constraints.mean_band),
                           "mean_lo[" + std::to_string(k) + "]");
    }
  }

  const double big_m = demand_ub + constraints.exclusion_radius + 1.0;
  for (std::size_t x = 0; x < constraints.excluded.size(); ++x) {
    const std::vector<double>& point = constraints.excluded[x];
    if (point.size() != demand.size()) {
      throw std::invalid_argument("excluded point size mismatch");
    }
    ConstraintArtifacts::ExclusionVars ev;
    ev.z_plus.assign(demand.size(), lp::Var{});
    ev.z_minus.assign(demand.size(), lp::Var{});
    lp::LinExpr any;
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      const std::string base =
          "excl" + std::to_string(x) + "[" + std::to_string(k) + "]";
      ev.z_plus[k] = model.add_binary(base + ".zp");
      ev.z_minus[k] = model.add_binary(base + ".zm");
      // z_plus = 1 forces d_k >= point_k + r.
      model.add_constraint(
          lp::LinExpr(demand[k]) >=
              lp::LinExpr(point[k] + constraints.exclusion_radius) -
                  big_m * (1.0 - lp::LinExpr(ev.z_plus[k])),
          base + ".hi");
      // z_minus = 1 forces d_k <= point_k - r.
      model.add_constraint(
          lp::LinExpr(demand[k]) <=
              lp::LinExpr(point[k] - constraints.exclusion_radius) +
                  big_m * (1.0 - lp::LinExpr(ev.z_minus[k])),
          base + ".lo");
      any += lp::LinExpr(ev.z_plus[k]) + lp::LinExpr(ev.z_minus[k]);
    }
    model.add_constraint(any >= lp::LinExpr(1.0),
                         "excl" + std::to_string(x) + ".any");
    artifacts.exclusions.push_back(std::move(ev));
  }
  return artifacts;
}

bool complete_constraint_assignment(const lp::Model& model,
                                    const std::vector<lp::Var>& demand,
                                    const InputConstraints& constraints,
                                    const ConstraintArtifacts& artifacts,
                                    const std::vector<double>& volumes,
                                    std::vector<double>& assignment) {
  (void)model;
  for (const Goalpost& gp : constraints.goalposts) {
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      if (!gp.mask.empty() && !gp.mask[k]) continue;
      if (std::abs(volumes[k] - gp.reference[k]) > gp.max_deviation + kTol) {
        return false;
      }
    }
  }

  if (constraints.mean_band) {
    double sum = 0.0;
    int n = 0;
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      sum += volumes[k];
      ++n;
    }
    const double mean = n ? sum / n : 0.0;
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      if (std::abs(volumes[k] - mean) > *constraints.mean_band + kTol) {
        return false;
      }
    }
    assignment[artifacts.mean_var.id] = mean;
  }

  for (std::size_t x = 0; x < constraints.excluded.size(); ++x) {
    const std::vector<double>& point = constraints.excluded[x];
    const auto& ev = artifacts.exclusions[x];
    bool satisfied = false;
    for (std::size_t k = 0; k < demand.size(); ++k) {
      if (!demand[k].valid()) continue;
      assignment[ev.z_plus[k].id] = 0.0;
      assignment[ev.z_minus[k].id] = 0.0;
    }
    for (std::size_t k = 0; k < demand.size() && !satisfied; ++k) {
      if (!demand[k].valid()) continue;
      if (volumes[k] >= point[k] + constraints.exclusion_radius - kTol) {
        assignment[ev.z_plus[k].id] = 1.0;
        satisfied = true;
      } else if (volumes[k] <=
                 point[k] - constraints.exclusion_radius + kTol) {
        assignment[ev.z_minus[k].id] = 1.0;
        satisfied = true;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace metaopt::core
