// Randomized 1-minimality invariant corpus for the core minimizers.
//
// For seeded random instances of both heuristic families, any core a
// strategy returns must satisfy the explain contract checked *from
// scratch* (a fresh ProbeContext, so the check cannot inherit minimizer
// state):
//   * gap(core) >= threshold, and
//   * for every element e in the core, gap(core \ {e}) < threshold —
//     the 1-minimality invariant.
//
// Every probe is an exact heuristic-vs-OPT re-solve, so the corpus size
// defaults small; METAOPT_EXPLAIN_FUZZ_COUNT dials it (sanitizer CI
// down, a nightly soak up). The root seed rotates via
// METAOPT_FUZZ_SEED like the other fuzz suites.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "domains/domains.h"
#include "explain/core_minimizer.h"
#include "explain/probe.h"
#include "heur/instance.h"
#include "util/rng.h"

namespace metaopt {
namespace {

int corpus_count(int fallback) {
  if (const char* env = std::getenv("METAOPT_EXPLAIN_FUZZ_COUNT")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

std::uint64_t root_seed() {
  if (const char* env = std::getenv("METAOPT_FUZZ_SEED")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v != 0) return v;
  }
  return 1;
}

/// Checks the explain contract on a fresh context; `label` names the
/// instance in failure messages.
void check_one_minimal(const heur::HeuristicInstance& instance,
                       const std::vector<double>& witness,
                       const std::vector<int>& core, double threshold,
                       const std::string& label) {
  explain::ProbeContext fresh(instance, witness);
  EXPECT_GE(fresh.probe(core).gap, threshold) << label;
  for (const int e : core) {
    std::vector<int> without;
    for (const int k : core) {
      if (k != e) without.push_back(k);
    }
    EXPECT_LT(fresh.probe(without).gap, threshold)
        << label << ": core is not 1-minimal, element " << e
        << " is removable";
  }
  EXPECT_TRUE(fresh.all_certified()) << label;
}

void run_corpus(const heur::InstanceConfig& base_config,
                const std::string& family, int count,
                const std::vector<double>& levels,
                const std::vector<double>& crafted) {
  domains::register_builtin();
  const std::unique_ptr<heur::HeuristicInstance> instance =
      heur::make_instance(base_config);
  const int n = instance->num_leader_vars();

  int explained = 0;
  for (int i = 0; i < count; ++i) {
    // Instance 0 is a known adversarial witness, so the invariant is
    // always exercised at least once regardless of random luck; the
    // rest of the corpus draws from the quantization levels gaps
    // concentrate on (§5), with a deliberate bias toward the
    // gap-inducing values.
    std::vector<double> witness;
    if (i == 0) {
      witness = crafted;
    } else {
      util::Rng rng(
          util::derive_seed(root_seed(), static_cast<std::uint64_t>(i)));
      witness.resize(static_cast<std::size_t>(n));
      for (double& v : witness) {
        v = levels[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(levels.size()) - 1))];
      }
    }

    explain::ProbeContext probe_once(*instance, witness);
    const double witness_gap = probe_once.probe(probe_once.support()).gap;
    if (witness_gap <= 0.0) continue;  // no gap: nothing to minimize
    ++explained;
    const double threshold = 0.95 * witness_gap;

    for (const std::string& strategy : explain::minimizer_names()) {
      explain::ProbeContext ctx(*instance, witness);
      explain::MinimizeOptions options;
      options.min_gap = threshold;
      options.seed = util::derive_seed(root_seed(), 1000 + i);
      const explain::CoreResult core =
          explain::make_minimizer(strategy)->minimize(ctx, options);
      const std::string label = family + " seed " + std::to_string(i) +
                                " strategy " + strategy;
      ASSERT_TRUE(core.minimal) << label;
      EXPECT_LE(core.core.size(), ctx.support().size()) << label;
      check_one_minimal(*instance, witness, core.core, threshold, label);
    }
  }
  // The corpus must actually exercise the minimizers, not skip through.
  EXPECT_GT(explained, 0) << family;
}

TEST(ExplainFuzz, BinpackCoresAreOneMinimal) {
  heur::InstanceConfig config;
  config.heuristic = "ffd";
  config.items = 6;
  config.dims = 1;
  config.bins = 4;
  // Sizes from the classic counterexample values (doubled-up so the
  // trouble pattern has a fighting chance in few draws), plus the
  // counterexample itself as the crafted instance.
  run_corpus(config, "ffd", corpus_count(8), {0.0, 0.26, 0.26, 0.45, 0.45},
             {0.45, 0.45, 0.26, 0.26, 0.26, 0.26});
}

TEST(ExplainFuzz, TeDpCoresAreOneMinimal) {
  heur::InstanceConfig config;
  config.heuristic = "dp";
  config.topology = "fig1";
  config.threshold = 50.0;
  // Levels 0, T (twice: pinnable demands drive the gap), capacities;
  // the crafted instance is the Fig. 1 witness with pathless padding.
  run_corpus(config, "dp", corpus_count(8), {0.0, 50.0, 50.0, 100.0, 110.0},
             {100.0, 50.0, 5.0, 110.0, 0.0, 0.0});
}

}  // namespace
}  // namespace metaopt
