// Minimal adversarial cores: shrink a gap witness to the smallest
// element subset whose sub-instance still exhibits the gap.
//
// The interface mirrors z3's spacer unsat_core_plugin: one abstract
// minimizer, pluggable strategies behind it, all sharing the probe
// machinery and a final verification pass. A strategy's shrink() only
// has to make progress; minimize() then runs a single-deletion fixpoint
// that *guarantees* the returned core is 1-minimal — removing any one
// element drops the sub-instance gap below the threshold — regardless
// of what the strategy did. (For greedy the fixpoint re-asks exactly
// the probes of its last pass, so the memo answers them for free.)
//
// Strategies:
//   * greedy — shuffled single-deletion passes to a fixpoint. Probe
//     count O(passes * n); the shuffle order comes off a derive_seed
//     stream so runs are byte-reproducible per seed.
//   * ddmin — Zeller & Hildebrandt delta debugging: try chunks, then
//     chunk complements, doubling granularity when stuck. Often far
//     fewer probes than greedy when the core is a small fraction of the
//     witness support.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "explain/probe.h"

namespace metaopt::explain {

struct MinimizeOptions {
  /// Absolute gap the core's sub-instance must retain (>= compares).
  double min_gap = 0.0;
  /// Seed of the shuffle streams (util::derive_seed(seed, pass)); the
  /// same seed reproduces the same core byte-for-byte.
  std::uint64_t seed = 1;
};

struct CoreResult {
  /// The minimal adversarial core, ascending element indices.
  std::vector<int> core;
  /// Gap of the core's sub-instance (>= MinimizeOptions::min_gap).
  double gap = 0.0;
  /// Every probe this minimization performed was certified.
  bool certified = false;
  /// Oracle evaluations spent (cache hits excluded).
  long probes = 0;
  /// Verified 1-minimal: removing any single element drops the gap
  /// below min_gap. False only when the starting witness itself missed
  /// the threshold (then `core` echoes the full support).
  bool minimal = false;
};

class CoreMinimizer {
 public:
  virtual ~CoreMinimizer() = default;

  /// Strategy key ("greedy", "ddmin") — CLI --strategy and reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Shrinks ctx.support() to a verified 1-minimal core. Template
  /// method: strategy shrink(), then the shared verification fixpoint.
  [[nodiscard]] CoreResult minimize(ProbeContext& ctx,
                                    const MinimizeOptions& options) const;

 protected:
  /// Strategy hook: returns a subset of `keep` whose sub-instance gap
  /// is still >= options.min_gap. Need not be minimal.
  [[nodiscard]] virtual std::vector<int> shrink(
      ProbeContext& ctx, std::vector<int> keep,
      const MinimizeOptions& options) const = 0;
};

/// Shuffled single-deletion passes to a fixpoint.
class GreedyDeletionMinimizer final : public CoreMinimizer {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }

 protected:
  [[nodiscard]] std::vector<int> shrink(
      ProbeContext& ctx, std::vector<int> keep,
      const MinimizeOptions& options) const override;
};

/// Classic ddmin over element chunks.
class DdminMinimizer final : public CoreMinimizer {
 public:
  [[nodiscard]] std::string name() const override { return "ddmin"; }

 protected:
  [[nodiscard]] std::vector<int> shrink(
      ProbeContext& ctx, std::vector<int> keep,
      const MinimizeOptions& options) const override;
};

/// Builds a minimizer by strategy key. Throws std::invalid_argument on
/// an unknown key, naming the registered ones.
[[nodiscard]] std::unique_ptr<CoreMinimizer> make_minimizer(
    const std::string& strategy);

/// Registered strategy keys, sorted (--help listings, error messages).
[[nodiscard]] std::vector<std::string> minimizer_names();

}  // namespace metaopt::explain
