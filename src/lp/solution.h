// Solve results returned by the simplex and branch-and-bound solvers.
#pragma once

#include <vector>

#include "lp/types.h"

namespace metaopt::lp {

/// Result of an LP or MIP solve. `values` is indexed by VarId of the
/// solved Model. For LP solves, `duals` (indexed by ConId) and
/// `reduced_costs` (indexed by VarId) are populated when the solve is
/// Optimal. Sign convention (verified empirically; see check/certify.h):
/// duals are multipliers of the internally *minimized* problem with
/// every row canonicalized as g(x) <= 0, i.e. the Lagrangian is
///   s*c'x + sum_i y_i g_i(x),  s = +1 Minimize / -1 Maximize,
/// with g_i = a_i'x - b_i for LessEqual and b_i - a_i'x for GreaterEqual
/// rows — so inequality duals are >= 0 for BOTH senses, regardless of
/// objective sense. Equality duals are free and enter stationarity with
/// dg/dx = -a_i.
struct Solution {
  SolveStatus status = SolveStatus::Error;
  double objective = 0.0;
  std::vector<double> values;
  std::vector<double> duals;
  std::vector<double> reduced_costs;

  /// Iterations used (LP) or nodes explored (MIP).
  long iterations = 0;

  /// Best proven bound on the objective (MIP); equals objective for
  /// proven-optimal solves.
  double best_bound = 0.0;

  /// Wall-clock seconds spent inside the solver.
  double solve_seconds = 0.0;

  /// True when the solve was independently certified (check::certify_lp /
  /// certify_mip) and passed; false when certification ran and failed OR
  /// was never requested. Only meaningful when the solver ran with
  /// certification enabled (SimplexOptions::certify / MipOptions::certify).
  bool certified = false;

  [[nodiscard]] bool is_optimal() const {
    return status == SolveStatus::Optimal;
  }
  [[nodiscard]] bool has_solution() const {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible ||
           status == SolveStatus::IterationLimit ||
           status == SolveStatus::TimeLimit;
  }
};

}  // namespace metaopt::lp
