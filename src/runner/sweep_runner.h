// Parallel, deterministic executor for SweepSpec campaigns.
//
// Jobs are independent single-shot MetaOpt solves — embarrassingly
// parallel (the POP insight of Narayanan et al., SOSP '21, applied to
// our own harness) — so SweepRunner fans them out over a work-stealing
// ThreadPool with per-job fault isolation: a job that throws is recorded
// as `failed` (with the exception message), a job whose solver gave up
// without an incumbent is `timeout`, and neither ever takes down the
// campaign or poisons a sibling's slot.
//
// Determinism: each job writes into its own pre-allocated result slot,
// aggregation sorts by job id, every double is printed with a fixed
// "%.17g" format, and per-job randomness comes from the spec-derived
// stream seed — so the JSONL payload is byte-identical regardless of
// thread count or scheduling order, except for the wall-time fields
// (`solve_seconds`, `wall_seconds`), which are placed last in each
// record so they are trivial to strip when diffing campaigns.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "heur/instance.h"
#include "obs/metrics.h"
#include "runner/sweep_spec.h"

namespace metaopt::runner {

enum class JobStatus {
  Ok,       ///< solver returned a result (optimal or budget-bounded incumbent)
  Timeout,  ///< budget exhausted with no incumbent at all
  Failed,   ///< the job threw; see JobResult::error
};

const char* to_string(JobStatus status);

struct JobResult {
  JobSpec spec;
  JobStatus status = JobStatus::Failed;
  std::string error;                ///< exception message when Failed
  heur::GapFindResult result;       ///< valid unless Failed
  double wall_seconds = 0.0;        ///< job wall time inside the pool
  /// Per-job obs metric deltas (shard-group diff around the job body:
  /// the group tag follows the job onto any worker threads it spawns,
  /// e.g. a multi-threaded B&B, so the delta covers the whole job, not
  /// just the pool thread it started on). Empty when recording is off —
  /// and then omitted from the JSONL record, so the byte format is
  /// unchanged for existing campaigns.
  obs::MetricsSnapshot metrics;
};

struct SweepReport {
  std::vector<JobResult> jobs;  ///< sorted by spec.id
  int num_ok = 0;
  int num_timeout = 0;
  int num_failed = 0;
  int threads = 1;
  double wall_seconds = 0.0;  ///< whole-campaign wall time

  /// One JSON record per job, newline-terminated, sorted by job id.
  [[nodiscard]] std::string jsonl() const;

  /// Writes jsonl() to `path` (parent directories created).
  void write_jsonl(const std::string& path) const;

  /// Appends `figure,series,x,y,extra` rows (the existing bench CSV
  /// shape): series = "<topology>/<heuristic>", x = the swept axis
  /// (threshold or partitions), y = normalized gap, extra = raw gap.
  void write_csv(const std::string& path, const std::string& figure) const;
};

/// Serializes one job result as a single-line JSON object (no trailing
/// newline). Wall-time fields come last.
std::string to_json(const JobResult& result);

struct SweepOptions {
  /// Worker threads; <= 0 means hardware_concurrency().
  int threads = 0;
  /// Invoked after each job completes (from worker threads, serialized
  /// by the runner): (result, completed, total).
  std::function<void(const JobResult&, int, int)> on_progress;
  /// Log one Info line per completed job and a campaign summary.
  bool log_progress = true;
};

class SweepRunner {
 public:
  using JobFn = std::function<heur::GapFindResult(const JobSpec&)>;

  explicit SweepRunner(SweepOptions options = {});

  /// Expands the spec and executes every job with the real solver stack.
  [[nodiscard]] SweepReport run(const SweepSpec& spec) const;

  /// Executes pre-expanded jobs through a custom job body (tests inject
  /// throwing/fake jobs here; run() uses execute_job).
  [[nodiscard]] SweepReport run_jobs(const std::vector<JobSpec>& jobs,
                                     const JobFn& fn) const;

  /// The default job body: builds the job's HeuristicInstance through
  /// the heur:: registry and runs its single-shot adversarial search.
  /// Stateless and thread-safe; throws on an unregistered heuristic
  /// (call domains::register_builtin() in the binary first) or unknown
  /// topology.
  static heur::GapFindResult execute_job(const JobSpec& job);

 private:
  SweepOptions options_;
};

}  // namespace metaopt::runner
