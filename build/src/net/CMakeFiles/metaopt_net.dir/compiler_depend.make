# Empty compiler generated dependencies file for metaopt_net.
# This may be replaced when dependencies are built.
