
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/te/client_split.cpp" "src/te/CMakeFiles/metaopt_te.dir/client_split.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/client_split.cpp.o.d"
  "/root/repo/src/te/demand.cpp" "src/te/CMakeFiles/metaopt_te.dir/demand.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/demand.cpp.o.d"
  "/root/repo/src/te/demand_pinning.cpp" "src/te/CMakeFiles/metaopt_te.dir/demand_pinning.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/demand_pinning.cpp.o.d"
  "/root/repo/src/te/gap.cpp" "src/te/CMakeFiles/metaopt_te.dir/gap.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/gap.cpp.o.d"
  "/root/repo/src/te/max_flow.cpp" "src/te/CMakeFiles/metaopt_te.dir/max_flow.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/max_flow.cpp.o.d"
  "/root/repo/src/te/max_min.cpp" "src/te/CMakeFiles/metaopt_te.dir/max_min.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/max_min.cpp.o.d"
  "/root/repo/src/te/path_set.cpp" "src/te/CMakeFiles/metaopt_te.dir/path_set.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/path_set.cpp.o.d"
  "/root/repo/src/te/pop.cpp" "src/te/CMakeFiles/metaopt_te.dir/pop.cpp.o" "gcc" "src/te/CMakeFiles/metaopt_te.dir/pop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/metaopt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/metaopt_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/kkt/CMakeFiles/metaopt_kkt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metaopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
