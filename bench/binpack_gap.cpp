// Bin packing: certified worst-case FFD-vs-OPT gap as the item count
// grows.
//
// Paper shape (journal version of the source paper): the FFD gap grows
// roughly linearly in the item count — the 0.45/0.26 family wastes one
// bin per six items — so the normalized gap (per bin budget) approaches
// a constant. This bench sweeps `items` with the single-shot white-box
// search per point and reports the exact re-scored gap.
//
// The whole figure is one SweepSpec on the ffd axis executed by the
// parallel SweepRunner. Budgets scale with METAOPT_BENCH_SCALE, workers
// with METAOPT_BENCH_THREADS, and METAOPT_BENCH_CERTIFY=1 additionally
// certifies every solve (check::certify_mip) — the CI smoke runs with
// certification on. Per-job reports land in bench_results/binpack.jsonl
// and the obs report in bench_results/BENCH_binpack.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "domains/domains.h"
#include "runner/sweep_runner.h"
#include "util/stopwatch.h"

namespace {

using namespace metaopt;

constexpr double kBudgetPerPoint = 30.0;

bool bench_certify() {
  const char* env = std::getenv("METAOPT_BENCH_CERTIFY");
  return env != nullptr && std::atoi(env) != 0;
}

void BinPack_FfdGapVsItems(benchmark::State& state) {
  domains::register_builtin();
  runner::SweepSpec spec;
  spec.heuristics = {runner::Heuristic::Ffd};
  spec.items = {4, 6, 8, 10};
  spec.seeds = {1};
  spec.budget_seconds = bench::scaled(kBudgetPerPoint);
  spec.certify = bench_certify();
  // The worst-case family seeds deterministically inside find_ffd_gap,
  // so the deterministic path still reports genuine positive gaps.
  spec.deterministic = true;

  runner::SweepOptions options;
  options.threads = bench::bench_threads();
  options.log_progress = false;

  const obs::MetricsSnapshot obs_baseline = bench::obs_begin();
  util::Stopwatch bench_watch;
  std::vector<double> job_walls, gaps, norm_gaps;
  double worst_gap = 0.0;
  int certified = 0;
  for (auto _ : state) {
    const runner::SweepReport report = runner::SweepRunner(options).run(spec);
    auto out = bench::csv("binpack");
    for (const runner::JobResult& job : report.jobs) {
      out.row("binpack", "ffd", job.spec.items, job.result.normalized_gap,
              job.result.gap);
      worst_gap = std::max(worst_gap, job.result.gap);
      certified += job.result.certified ? 1 : 0;
      job_walls.push_back(job.wall_seconds);
      gaps.push_back(job.result.gap);
      norm_gaps.push_back(job.result.normalized_gap);
    }
    report.write_jsonl("bench_results/binpack.jsonl");
    state.counters["ok"] = report.num_ok;
    state.counters["failed"] = report.num_failed + report.num_timeout;
    state.counters["threads"] = report.threads;
  }
  state.counters["worst_gap"] = worst_gap;
  state.counters["certified"] = certified;
  bench::write_bench_report(
      "binpack", obs_baseline, bench_watch.seconds(),
      {{"scale", std::to_string(bench::budget_scale())},
       {"threads", std::to_string(bench::bench_threads())},
       {"certify", std::to_string(bench_certify() ? 1 : 0)},
       {"budget_per_point", std::to_string(spec.budget_seconds)}},
      {{"job_wall_seconds", job_walls},
       {"gap", gaps},
       {"norm_gap", norm_gaps}});
}

BENCHMARK(BinPack_FfdGapVsItems)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
