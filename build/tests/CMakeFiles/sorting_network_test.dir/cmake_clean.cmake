file(REMOVE_RECURSE
  "CMakeFiles/sorting_network_test.dir/sorting_network_test.cpp.o"
  "CMakeFiles/sorting_network_test.dir/sorting_network_test.cpp.o.d"
  "sorting_network_test"
  "sorting_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
