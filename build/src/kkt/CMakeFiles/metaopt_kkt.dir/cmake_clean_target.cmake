file(REMOVE_RECURSE
  "libmetaopt_kkt.a"
)
